"""Stateful property testing: random interleavings of runtime operations.

Hypothesis drives arbitrary sequences of the operations a real
deployment performs — instantiation, movement (driver- and
host-initiated), invocation through any reference, reference creation at
arbitrary Cores, tracker GC — and checks the runtime's global invariants
after every step:

- every complet is hosted by exactly one running Core;
- every Core keeps at most one tracker per target;
- invocation through any reference reaches the authoritative state
  (counter values are globally consistent);
- tracker GC never breaks a live reference.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter

CORES = ["a", "b", "c"]


class ClusterMachine(RuleBasedStateMachine):
    references = Bundle("references")

    @initialize()
    def setup(self):
        self.cluster = Cluster(CORES)
        #: Authoritative expected value per complet id.
        self.expected: dict = {}
        self.complet_count = 0

    # -- operations ----------------------------------------------------------------

    @rule(target=references, core=st.sampled_from(CORES))
    def create_complet(self, core):
        if self.complet_count >= 6:  # bound the population
            stub = next(iter(self.expected_stubs()))
            return stub
        stub = Counter(0, _core=self.cluster[core])
        self.expected[stub._fargo_target_id] = 0
        self.complet_count += 1
        return stub

    def expected_stubs(self):
        # Recover one live stub per known complet via the harness.
        for complet_id in self.expected:
            for core in self.cluster:
                if core.repository.hosts(complet_id):
                    yield core.references.stub_for_local(complet_id)
                    break

    @rule(ref=references, destination=st.sampled_from(CORES))
    def move_from_driver(self, ref, destination):
        self.cluster.move(ref, destination)

    @rule(ref=references, destination=st.sampled_from(CORES))
    def move_from_host(self, ref, destination):
        self.cluster.move_via_host(ref, destination)

    @rule(ref=references, by=st.integers(min_value=1, max_value=5))
    def invoke(self, ref, by):
        observed = ref.increment(by)
        self.expected[ref._fargo_target_id] += by
        assert observed == self.expected[ref._fargo_target_id]

    @rule(target=references, ref=references, at=st.sampled_from(CORES))
    def alias_reference(self, ref, at):
        """A second reference to the same complet, wired elsewhere."""
        return self.cluster.stub_at(at, ref)

    @rule()
    def collect_trackers(self):
        self.cluster.collect_all_trackers()

    @rule()
    def advance_time(self):
        self.cluster.advance(1.0)

    # -- invariants ---------------------------------------------------------------------

    @invariant()
    def exactly_one_host_per_complet(self):
        for complet_id in getattr(self, "expected", {}):
            hosts = [
                core.name
                for core in self.cluster
                if core.repository.hosts(complet_id)
            ]
            assert len(hosts) == 1, (complet_id, hosts)

    @invariant()
    def one_tracker_per_target_per_core(self):
        for core in getattr(self, "cluster", []):
            seen = set()
            for tracker in core.repository.trackers():
                key = tracker.target_id
                assert key not in seen, (core.name, key)
                seen.add(key)

    @invariant()
    def authoritative_state_matches(self):
        for complet_id, value in getattr(self, "expected", {}).items():
            for core in self.cluster:
                anchor = core.repository.get(complet_id)
                if anchor is not None:
                    assert anchor.value == value


TestClusterMachine = ClusterMachine.TestCase
TestClusterMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
