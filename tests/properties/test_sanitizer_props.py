"""Property: sanitizer-observed races ⊆ statically-warned races.

The static interaction checker (FG401/FG403) over-approximates: it
assumes every co-firable rule pair actually fires together.  The
LayoutSanitizer under-approximates: it only sees the schedules that
actually ran.  Soundness of the pair is the containment — under *any*
random script set and event schedule, every race the sanitizer observes
at runtime must have been statically flagged on the same script set.

Scripts are drawn from the statically-checkable fragment (triggers in
{completArrived, moveCompleted, timer}, literal complet ids, literal
destinations, plus ``call restore(...)`` for the FG403 side); schedules
move fresh trigger complets onto the listening Cores and advance the
virtual clock so timers fire.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.interaction import (
    coerce_scripts,
    find_move_races,
    find_recovery_conflicts,
    script_set_effects,
)
from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter
from repro.recovery import CheckpointPolicy
from repro.script.interpreter import ScriptEngine

CORES = ["a", "b", "c", "d", "e", "f", "g", "h"]
#: Cores whose engines install rules (and whose arrivals trigger them).
HOMES = ["a", "b"]
#: Literal destinations rules move targets to.
DESTS = ["d", "e"]
#: Hosts the schedule launches fresh trigger complets from.
TRIGGER_HOSTS = ["f", "g", "h"]

RULE = st.fixed_dictionaries(
    {
        "event": st.sampled_from(["completArrived", "moveCompleted", "timer"]),
        "home": st.sampled_from(HOMES),
        "action": st.sampled_from(["move", "move", "move", "restore"]),
        "target": st.integers(min_value=0, max_value=1),
        "dest": st.sampled_from(DESTS),
    }
)


def rule_source(rule: dict, target_ids: list[str]) -> str:
    target = target_ids[rule["target"]]
    if rule["action"] == "move":
        action = f'move "{target}" to "{rule["dest"]}"'
    else:
        action = f'call restore("{target}")'
    if rule["event"] == "timer":
        return f"on timer(1.0) do {action} end"
    return f'on {rule["event"]} listenAt [{rule["home"]}] do {action} end'


class TestObservedSubsetOfStatic:
    @settings(max_examples=30, deadline=None)
    @given(
        rules=st.lists(RULE, min_size=1, max_size=4),
        schedule=st.lists(st.sampled_from(HOMES), min_size=1, max_size=3),
    )
    def test_every_observed_race_was_statically_flagged(self, rules, schedule):
        cluster = Cluster(CORES, sanitize=True)
        cluster.enable_recovery()
        targets = [
            Counter(0, _core=cluster["c"], _at="c"),
            Counter(0, _core=cluster["c"], _at="c"),
        ]
        target_ids = sorted(cluster.complets_at("c"))
        policy = CheckpointPolicy(interval=0.3, on_arrival=True)
        for target in targets:
            cluster.checkpoints.protect(target, policy)
        cluster.advance(1.0)  # every target has a checkpoint to restore

    # The dynamic run and the static check see the same script set.
        sources = [rule_source(rule, target_ids) for rule in rules]
        engines = {home: ScriptEngine(cluster, home=home) for home in HOMES}
        for rule, source in zip(rules, sources):
            engines[rule["home"]].run(source)

        for index, home in enumerate(schedule):
            host = TRIGGER_HOSTS[index % len(TRIGGER_HOSTS)]
            trigger = Counter(0, _core=cluster[host], _at=host)
            cluster.move(trigger, home)
        cluster.advance(2.5)  # timers fire at least twice

        races = cluster.sanitizer.races
        if not races:
            return
        effects = script_set_effects(coerce_scripts(sources))
        move_subjects = {race.subject for race in find_move_races(effects)}
        recovery_subjects = {
            conflict.subject for conflict in find_recovery_conflicts(effects)
        }
        for race in races:
            kinds = {race.first_kind, race.second_kind}
            if kinds == {"move"}:
                assert race.subject in move_subjects, (
                    f"dynamic move/move race on {race.subject!r} was not "
                    f"statically flagged by FG401 over {sources}"
                )
            elif kinds == {"move", "restore"}:
                assert (
                    race.subject in recovery_subjects
                    or None in recovery_subjects  # whole-Core failover
                ), (
                    f"dynamic move/restore race on {race.subject!r} was not "
                    f"statically flagged by FG403 over {sources}"
                )
            else:
                raise AssertionError(
                    f"unexpected dynamic race kinds {kinds} — the generated "
                    f"fragment should only produce move/move and move/restore"
                )
