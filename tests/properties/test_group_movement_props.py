"""Property-based tests: pull forests move atomically, links stay behind."""

from hypothesis import given, settings, strategies as st

from repro.complet.relocators import Pull
from repro.core.core import Core
from repro.net.messages import MessageKind
from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter
from tests.anchors import Holder

# A random tree shape: parent index for each node (node 0 is the root).
tree_shapes = st.lists(
    st.integers(min_value=0, max_value=6), min_size=0, max_size=8
)
# Which edges are pull (True) vs link (False).
edge_kinds = st.lists(st.booleans(), min_size=8, max_size=8)


def _build_tree(cluster, parents, pulls):
    """Build a reference tree of Holder complets at core 'a'.

    ``parents[i]`` is the parent of node i+1 (node 0 is the root);
    ``pulls[i]`` says whether that edge is a pull edge.
    """
    nodes = [Holder(None, _core=cluster["a"])]
    pull_edges = []
    for index, raw_parent in enumerate(parents):
        parent = nodes[raw_parent % len(nodes)]
        child = Holder(None, _core=cluster["a"])
        anchor = cluster["a"].repository.get(parent._fargo_target_id)
        if anchor.ref is None:
            anchor.ref = child
            edge_stub = anchor.ref
        else:
            if not hasattr(anchor, "extra"):
                anchor.extra = []
            anchor.extra.append(child)
            edge_stub = anchor.extra[-1]
        is_pull = pulls[index % len(pulls)]
        if is_pull:
            Core.get_meta_ref(edge_stub).set_relocator(Pull())
            pull_edges.append((parent._fargo_target_id, child._fargo_target_id))
        nodes.append(child)
    return nodes, pull_edges


def _pull_closure(root_id, pull_edges):
    """Complets reachable from the root over pull edges."""
    reached = {root_id}
    changed = True
    while changed:
        changed = False
        for parent, child in pull_edges:
            if parent in reached and child not in reached:
                reached.add(child)
                changed = True
    return reached


class TestPullForests:
    @settings(max_examples=30, deadline=None)
    @given(parents=tree_shapes, pulls=edge_kinds)
    def test_exactly_the_pull_closure_moves(self, parents, pulls):
        cluster = Cluster(["a", "b"])
        nodes, pull_edges = _build_tree(cluster, parents, pulls)
        root = nodes[0]
        expected_movers = _pull_closure(root._fargo_target_id, pull_edges)
        cluster.move(root, "b")
        for node in nodes:
            location = cluster.locate(node)
            if node._fargo_target_id in expected_movers:
                assert location == "b", node
            else:
                assert location == "a", node

    @settings(max_examples=30, deadline=None)
    @given(parents=tree_shapes, pulls=edge_kinds)
    def test_group_always_one_message(self, parents, pulls):
        cluster = Cluster(["a", "b"])
        nodes, _pull_edges = _build_tree(cluster, parents, pulls)
        before = cluster.stats.by_kind[MessageKind.MOVE_COMPLET]
        cluster.move(nodes[0], "b")
        assert cluster.stats.by_kind[MessageKind.MOVE_COMPLET] - before == 2

    @settings(max_examples=20, deadline=None)
    @given(parents=tree_shapes, pulls=edge_kinds)
    def test_references_resolve_after_group_move(self, parents, pulls):
        cluster = Cluster(["a", "b"])
        nodes, _pull_edges = _build_tree(cluster, parents, pulls)
        cluster.move(nodes[0], "b")
        for node in nodes:
            host = cluster.core(cluster.locate(node))
            anchor = host.repository.get(node._fargo_target_id)
            if anchor.ref is not None:
                assert anchor.ref._fargo_target_id is not None
                # The reference still resolves wherever both ended up:
                fresh = cluster.stub_at(host.name, anchor.ref)
                assert fresh.has_ref() in (True, False)
