"""Property-based tests for store offloading and envelope batching.

Three invariants the ISSUE pins down:

- a proxied payload resolves to *byte-identical* content vs the eager
  marshal, for any payload;
- copy-on-first-read is version-stamped: an unchanged complet marshals
  under one content key, and any mutation (or reference retarget) lands
  the next marshal under a new key;
- batching preserves per-link FIFO order under arbitrary interleavings
  of posts, sends, and clock advances.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.workload import DataSource
from repro.complet.marshal import _resolve_stream, marshal_clone
from repro.complet.stub import stub_target_id
from repro.net import BatchPolicy, BatchingTransport, Envelope, MessageKind, SimTransport
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler
from repro.store import InMemoryStore, StoreClient, StoreProxy

THRESHOLD = 1_024


class TestProxyRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(min_size=0, max_size=8_192))
    def test_offload_resolve_is_byte_identical(self, data):
        client = StoreClient(InMemoryStore(), threshold=THRESHOLD)
        wire = client.offload(data)
        assert isinstance(wire, StoreProxy) == (len(data) >= THRESHOLD)
        assert client.resolve(wire, release=True) == data

    @settings(max_examples=15, deadline=None)
    @given(size=st.integers(min_value=0, max_value=300_000))
    def test_offloaded_clone_stream_matches_eager_marshal(self, size):
        cluster = Cluster(["a", "b"], store="memory")
        try:
            core = cluster["a"]
            stub = DataSource(max(size, 1), _core=core)
            anchor = core.repository.get(stub_target_id(stub))
            eager = marshal_clone(core, anchor, anchor.complet_id, offload=False)
            offloaded = marshal_clone(core, anchor, anchor.complet_id, offload=True)
            assert _resolve_stream(core, offloaded.stream) == eager.stream
        finally:
            cluster.close()


class TestVersionStampedInvalidation:
    @settings(max_examples=15, deadline=None)
    @given(script=st.lists(st.booleans(), min_size=2, max_size=8))
    def test_key_changes_exactly_on_mutation(self, script):
        """``script`` is a list of marshal steps; True mutates first."""
        cluster = Cluster(["a", "b"], store="memory", store_threshold=256)
        try:
            core = cluster["a"]
            stub = DataSource(2_048, _core=core)
            anchor = core.repository.get(stub_target_id(stub))
            previous_key = None
            for mutate in script:
                if mutate:
                    # Any attribute write bumps the anchor's state version.
                    anchor.blob = bytes(reversed(anchor.blob))
                entry = marshal_clone(core, anchor, anchor.complet_id, offload=True)
                assert isinstance(entry.stream, StoreProxy)
                key = entry.stream.key
                if previous_key is not None:
                    if mutate:
                        assert key != previous_key
                    else:
                        assert key == previous_key
                _resolve_stream(core, entry.stream)
                previous_key = key
        finally:
            cluster.close()


    def test_retarget_invalidates_the_key(self):
        from tests.anchors import Holder

        cluster = Cluster(["a", "b"], store="memory", store_threshold=64)
        try:
            core = cluster["a"]
            first = DataSource(128, _core=core)
            second = DataSource(128, seed=11, _core=core)
            holder = Holder(first, _core=core)
            anchor = core.repository.get(stub_target_id(holder))

            def marshal_key():
                entry = marshal_clone(core, anchor, anchor.complet_id, offload=True)
                assert isinstance(entry.stream, StoreProxy)
                _resolve_stream(core, entry.stream)
                return entry.stream.key

            original = marshal_key()
            assert marshal_key() == original  # unchanged holder: stable key
            holder.set_ref(second)
            retargeted = marshal_key()
            assert retargeted != original  # retarget is a state change
            assert retargeted.size == original.size  # only the token differs
        finally:
            cluster.close()


def _one_way(dst: str, payload: bytes) -> Envelope:
    return Envelope(src="src", dst=dst, kind=MessageKind.EVENT_NOTIFY, payload=payload)


# One schedule step: (action, destination index, payload seed)
_steps = st.lists(
    st.tuples(
        st.sampled_from(["post", "post", "post", "send", "advance", "flush"]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=40,
)


class TestBatchOrdering:
    @settings(max_examples=60, deadline=None)
    @given(
        steps=_steps,
        max_messages=st.integers(min_value=1, max_value=6),
        max_bytes=st.integers(min_value=1, max_value=512),
    )
    def test_per_link_fifo_under_random_schedules(self, steps, max_messages, max_bytes):
        sim = SimTransport(Scheduler(VirtualClock()))
        transport = BatchingTransport(
            sim, BatchPolicy(max_messages=max_messages, max_bytes=max_bytes, max_delay=0.01)
        )
        destinations = ["d0", "d1", "d2"]
        received: dict[str, list[bytes]] = {d: [] for d in destinations}
        posted: dict[str, list[bytes]] = {d: [] for d in destinations}

        def recorder(dst: str):
            def handler(envelope: Envelope) -> bytes:
                received[dst].append(envelope.payload)
                return b"ok"

            return handler

        transport.register("src", lambda e: b"")
        for dst in destinations:
            transport.register(dst, recorder(dst))

        sequence = 0
        for action, dst_idx, seed in steps:
            dst = destinations[dst_idx]
            if action == "post":
                payload = bytes([seed]) * (seed % 7 + 1) + str(sequence).encode()
                sequence += 1
                posted[dst].append(payload)
                transport.post(_one_way(dst, payload))
            elif action == "send":
                payload = b"rpc" + str(sequence).encode()
                sequence += 1
                posted[dst].append(payload)
                transport.send(
                    Envelope(
                        src="src", dst=dst, kind=MessageKind.ADMIN_QUERY, payload=payload
                    )
                )
            elif action == "advance":
                sim.scheduler.advance(0.02)
            else:
                transport.flush_all()

        transport.flush_all()
        for dst in destinations:
            assert received[dst] == posted[dst]
