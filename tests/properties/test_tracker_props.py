"""Property-based tests: tracker-chain invariants under random itineraries."""

from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter

CORES = ["a", "b", "c", "d"]

itineraries = st.lists(st.sampled_from(CORES), min_size=1, max_size=10)


def _fresh_cluster():
    return Cluster(CORES)


class TestChainInvariants:
    @settings(max_examples=30, deadline=None)
    @given(hops=itineraries)
    def test_complet_hosted_at_exactly_one_core(self, hops):
        cluster = _fresh_cluster()
        counter = Counter(0, _core=cluster["a"])
        for destination in hops:
            cluster.move_via_host(counter, destination)
        hosts = [
            core.name
            for core in cluster
            if core.repository.hosts(counter._fargo_target_id)
        ]
        final = hops[-1] if hops else "a"
        assert hosts == [final]

    @settings(max_examples=30, deadline=None)
    @given(hops=itineraries)
    def test_invocation_always_reaches_target(self, hops):
        """However the complet wandered, the original stub resolves it."""
        cluster = _fresh_cluster()
        counter = Counter(0, _core=cluster["a"])
        for destination in hops:
            cluster.move_via_host(counter, destination)
        assert counter.increment() == 1

    @settings(max_examples=30, deadline=None)
    @given(hops=itineraries)
    def test_invocation_path_is_direct_afterwards(self, hops):
        """§3.1 shortening post-condition: after an invocation, the
        caller's tracker points directly at the Core hosting the target."""
        cluster = _fresh_cluster()
        counter = Counter(0, _core=cluster["a"])
        for destination in hops:
            cluster.move_via_host(counter, destination)
        counter.increment()
        host = cluster.locate(counter)
        tracker = counter._fargo_tracker
        assert tracker.is_local and host == "a" or tracker.next_hop.core == host

    @settings(max_examples=30, deadline=None)
    @given(hops=itineraries)
    def test_gc_fixpoint_leaves_only_referenced_trackers(self, hops):
        """After invocation + GC to a fixpoint, every surviving tracker is
        local, referenced by a live stub, or pointed at by a survivor —
        chains of garbage trackers collapse entirely."""
        cluster = _fresh_cluster()
        counter = Counter(0, _core=cluster["a"])
        for destination in hops:
            cluster.move_via_host(counter, destination)
        counter.increment()
        cluster.collect_all_trackers()
        target_id = counter._fargo_target_id
        survivors = {
            core.name: core.repository.existing_tracker(target_id)
            for core in cluster
            if core.repository.existing_tracker(target_id) is not None
        }
        for name, tracker in survivors.items():
            assert (
                tracker.is_local
                or tracker.live_stub_count > 0
                or tracker.remote_pointers
            ), name
        # And the reference still works after collection:
        assert counter.increment() == 2

    @settings(max_examples=30, deadline=None)
    @given(hops=itineraries)
    def test_gc_preserves_resolvability(self, hops):
        """Collecting trackers never breaks a live reference."""
        cluster = _fresh_cluster()
        counter = Counter(0, _core=cluster["a"])
        for destination in hops:
            cluster.move_via_host(counter, destination)
        counter.increment()
        cluster.collect_all_trackers()
        assert counter.increment() == 2

    @settings(max_examples=30, deadline=None)
    @given(hops=itineraries, observers=st.lists(st.sampled_from(CORES), max_size=3))
    def test_one_tracker_per_target_per_core(self, hops, observers):
        """However many stubs exist at a Core, there is one tracker."""
        cluster = _fresh_cluster()
        counter = Counter(0, _core=cluster["a"])
        stubs = [cluster.stub_at(observer, counter) for observer in observers]
        for destination in hops:
            cluster.move_via_host(counter, destination)
        for stub in stubs:
            stub.increment()
        target_id = counter._fargo_target_id
        for core in cluster:
            trackers = [
                t for t in core.repository.trackers() if t.target_id == target_id
            ]
            assert len(trackers) <= 1
