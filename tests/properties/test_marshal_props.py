"""Property-based tests for parameter-passing marshaling (§3.1 invariants)."""

from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter, Echo

# Arbitrary picklable JSON-ish payloads.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20)
    | st.binary(max_size=64),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4)
    | st.tuples(children, children),
    max_leaves=20,
)


class TestByValueInvariants:
    @settings(max_examples=40, deadline=None)
    @given(payload=json_values)
    def test_colocated_roundtrip_preserves_equality(self, payload):
        cluster = Cluster(["a", "b"])
        echo = Echo("e", _core=cluster["a"])
        assert echo.echo(payload) == payload

    @settings(max_examples=40, deadline=None)
    @given(payload=json_values)
    def test_remote_roundtrip_preserves_equality(self, payload):
        cluster = Cluster(["a", "b"])
        echo = Echo("e", _core=cluster["a"])
        cluster.move(echo, "b")
        assert echo.echo(payload) == payload

    @settings(max_examples=40, deadline=None)
    @given(payload=json_values)
    def test_mutable_payloads_never_share_identity(self, payload):
        cluster = Cluster(["a", "b"])
        echo = Echo("e", _core=cluster["a"])
        result = echo.echo(payload)
        if isinstance(payload, (list, dict)) and payload:
            assert result is not payload


class TestReferenceInvariants:
    @settings(max_examples=25, deadline=None)
    @given(payload=json_values)
    def test_graph_with_reference_keeps_target_shared(self, payload):
        """Wrapping a complet reference in any object graph still passes
        the complet by reference."""
        cluster = Cluster(["a", "b"])
        counter = Counter(0, _core=cluster["a"])
        echo = Echo("e", _core=cluster["b"], _at="b")
        result = echo.echo({"wrapped": [payload, counter]})
        result["wrapped"][1].increment()
        assert counter.read() == 1

    @settings(max_examples=25, deadline=None)
    @given(depth=st.integers(min_value=1, max_value=6))
    def test_deeply_nested_reference_survives(self, depth):
        cluster = Cluster(["a", "b"])
        counter = Counter(0, _core=cluster["a"])
        echo = Echo("e", _core=cluster["b"], _at="b")
        graph: object = counter
        for _ in range(depth):
            graph = {"inner": [graph]}
        result = echo.echo(graph)
        for _ in range(depth):
            result = result["inner"][0]
        result.increment()
        assert counter.read() == 1


class TestMovementInvariants:
    @settings(max_examples=25, deadline=None)
    @given(payload=json_values)
    def test_state_equality_after_move(self, payload):
        """Whatever picklable state a complet holds, it survives a move."""
        cluster = Cluster(["a", "b"])
        echo = Echo("e", _core=cluster["a"])
        anchor = cluster["a"].repository.get(echo._fargo_target_id)
        anchor.cargo = payload
        cluster.move(echo, "b")
        arrived = cluster["b"].repository.get(echo._fargo_target_id)
        assert arrived.cargo == payload

    @settings(max_examples=25, deadline=None)
    @given(hops=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=8))
    def test_state_survives_any_itinerary(self, hops):
        cluster = Cluster(["a", "b", "c"])
        counter = Counter(0, _core=cluster["a"])
        expected = 0
        for destination in hops:
            cluster.move(counter, destination)
            expected = counter.increment()
        assert counter.read() == expected
        assert cluster.locate(counter) == hops[-1]
