"""Property-based tests for the simulated network's cost model."""

from hypothesis import given, settings, strategies as st

from repro.net.messages import Envelope, MessageKind
from repro.net.simnet import Link, SimNetwork
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler

bandwidths = st.floats(min_value=1.0, max_value=1e9)
latencies = st.floats(min_value=0.0, max_value=10.0)
sizes = st.integers(min_value=0, max_value=10**7)


class TestCostModel:
    @settings(max_examples=80, deadline=None)
    @given(bandwidth=bandwidths, latency=latencies, size=sizes)
    def test_transfer_time_formula(self, bandwidth, latency, size):
        link = Link(bandwidth=bandwidth, latency=latency)
        assert link.transfer_time(size) == latency + size / bandwidth

    @settings(max_examples=80, deadline=None)
    @given(
        bandwidth=bandwidths,
        latency=latencies,
        small=sizes,
        extra=st.integers(min_value=1, max_value=10**6),
    )
    def test_monotone_in_size(self, bandwidth, latency, small, extra):
        link = Link(bandwidth=bandwidth, latency=latency)
        assert link.transfer_time(small + extra) > link.transfer_time(small)

    @settings(max_examples=80, deadline=None)
    @given(latency=latencies, size=sizes, factor=st.floats(min_value=2.0, max_value=100.0))
    def test_faster_link_never_slower(self, latency, size, factor):
        slow = Link(bandwidth=1000.0, latency=latency)
        fast = Link(bandwidth=1000.0 * factor, latency=latency)
        assert fast.transfer_time(size) <= slow.transfer_time(size)


class TestAccountingProperties:
    @settings(max_examples=40, deadline=None)
    @given(payloads=st.lists(st.binary(max_size=2_000), min_size=1, max_size=20))
    def test_bytes_accounting_is_exact(self, payloads):
        scheduler = Scheduler(VirtualClock())
        network = SimNetwork(scheduler)
        network.register("a", lambda e: b"")
        network.register("b", lambda e: b"ok")
        for payload in payloads:
            network.send(
                Envelope(src="a", dst="b", kind=MessageKind.ADMIN_QUERY, payload=payload)
            )
        expected_request_bytes = sum(len(p) for p in payloads)
        assert network.link_stats("a", "b").bytes == expected_request_bytes
        assert network.link_stats("a", "b").messages == len(payloads)
        assert network.link_stats("b", "a").messages == len(payloads)

    @settings(max_examples=40, deadline=None)
    @given(payloads=st.lists(st.binary(max_size=2_000), min_size=1, max_size=20))
    def test_clock_advances_by_total_transfer_time(self, payloads):
        scheduler = Scheduler(VirtualClock())
        network = SimNetwork(scheduler)
        network.register("a", lambda e: b"")
        network.register("b", lambda e: b"ok")
        for payload in payloads:
            network.send(
                Envelope(src="a", dst="b", kind=MessageKind.ADMIN_QUERY, payload=payload)
            )
        assert scheduler.clock.now() == network.stats.seconds

    @settings(max_examples=30, deadline=None)
    @given(count=st.integers(min_value=1, max_value=50))
    def test_trace_is_bounded(self, count):
        scheduler = Scheduler(VirtualClock())
        network = SimNetwork(scheduler, trace_capacity=16)
        network.register("a", lambda e: b"")
        network.register("b", lambda e: b"")
        for _ in range(count):
            network.post(
                Envelope(src="a", dst="b", kind=MessageKind.EVENT_NOTIFY, payload=b"")
            )
        assert len(network.trace) == min(count, 16)
