"""Property tests for the hot-path fixes.

Two invariants land here:

- clone-stream memoization is *invisible*: whatever the cache answers
  must be byte-identical to a from-scratch marshal of the current state;
- forwarder-side chain collapse preserves reachability: after any
  itinerary of moves, every tracker chain still terminates at the Core
  hosting the target, and invocations keep landing.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter
from repro.complet.anchor import Anchor
from repro.complet.marshal import CloneStreamCache, marshal_clone
from repro.complet.stub import compile_complet

CORES = ["a", "b", "c", "d", "e"]

payloads = st.recursive(
    st.none() | st.integers(-1000, 1000) | st.text(max_size=12) | st.binary(max_size=32),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=12,
)


class Blob_(Anchor):
    """State-carrying complet holding one reference (for memo tests)."""

    def __init__(self, payload=None, ref=None) -> None:
        self.payload = payload
        self.ref = ref

    def poke(self) -> int:
        self.payload = ("poked", self.payload)
        return 1


Blob = compile_complet(Blob_)


def _fresh_marshal(core, anchor):
    """Marshal with an empty cache: the ground truth for byte identity."""
    saved = core.marshal_cache
    core.marshal_cache = CloneStreamCache()
    try:
        return marshal_clone(core, anchor, anchor.complet_id).stream
    finally:
        core.marshal_cache = saved


class TestCloneStreamMemoization:
    @settings(max_examples=30, deadline=None)
    @given(payload=payloads)
    def test_cached_stream_is_byte_identical(self, payload):
        cluster = Cluster(["a", "b"])
        core = cluster["a"]
        target = Counter(0, _core=core)
        blob = Blob(payload, target, _core=core)
        anchor = core.repository.get(blob._fargo_target_id)

        first = marshal_clone(core, anchor, anchor.complet_id).stream
        hits_before = core.marshal_cache.hits
        second = marshal_clone(core, anchor, anchor.complet_id).stream
        assert core.marshal_cache.hits == hits_before + 1
        assert second == first
        assert _fresh_marshal(core, anchor) == first

    @settings(max_examples=30, deadline=None)
    @given(payload=payloads)
    def test_mutation_invalidates_the_cached_stream(self, payload):
        cluster = Cluster(["a", "b"])
        core = cluster["a"]
        blob = Blob(payload, None, _core=core)
        anchor = core.repository.get(blob._fargo_target_id)

        before = marshal_clone(core, anchor, anchor.complet_id).stream
        blob.poke()
        after = marshal_clone(core, anchor, anchor.complet_id).stream
        assert after != before
        assert after == _fresh_marshal(core, anchor)

    @settings(max_examples=20, deadline=None)
    @given(payload=payloads, moves=st.lists(st.sampled_from(["a", "b"]), max_size=3))
    def test_memoization_tracks_reference_retargeting(self, payload, moves):
        """Moving the *referenced* complet must refresh the clone stream,
        because the stream embeds the reference's last-known address."""
        cluster = Cluster(["a", "b"])
        core = cluster["a"]
        target = Counter(0, _core=core)
        blob = Blob(payload, target, _core=core)
        anchor = core.repository.get(blob._fargo_target_id)
        for destination in moves:
            marshal_clone(core, anchor, anchor.complet_id)
            cluster.move_via_host(target, destination)
            assert (
                marshal_clone(core, anchor, anchor.complet_id).stream
                == _fresh_marshal(core, anchor)
            )


def _terminal_tracker(cluster, tracker):
    """Follow a tracker chain across Cores until it turns local."""
    current = tracker
    for _ in range(64):
        if current.is_local:
            return current
        assert current.next_hop is not None, "chain dangles unexpectedly"
        hop = current.next_hop
        current = cluster[hop.core].repository.tracker_by_serial(hop.serial)
        assert current is not None, "chain points at a collected tracker"
    raise AssertionError("chain did not terminate within 64 hops")


class TestChainCollapseReachability:
    @settings(max_examples=30, deadline=None)
    @given(hops=st.lists(st.sampled_from(CORES), min_size=1, max_size=12))
    def test_invocations_land_after_any_itinerary(self, hops):
        cluster = Cluster(CORES)
        counter = Counter(0, _core=cluster["a"])
        for destination in hops:
            cluster.move_via_host(counter, destination)
        assert counter.increment() == 1
        assert counter.increment() == 2
        assert cluster.locate(counter) == hops[-1]

    @settings(max_examples=25, deadline=None)
    @given(hops=st.lists(st.sampled_from(CORES), min_size=1, max_size=12))
    def test_every_chain_terminates_at_the_host(self, hops):
        cluster = Cluster(CORES)
        counter = Counter(0, _core=cluster["a"])
        for destination in hops:
            cluster.move_via_host(counter, destination)
        counter.increment()
        host = hops[-1]
        target_id = counter._fargo_target_id
        for core in cluster:
            for tracker in core.repository.trackers():
                if tracker.target_id != target_id:
                    continue
                terminal = _terminal_tracker(cluster, tracker)
                assert terminal.address.core == host

    @settings(max_examples=25, deadline=None)
    @given(
        hops=st.lists(st.sampled_from(CORES), min_size=2, max_size=10),
        observers=st.sets(st.sampled_from(CORES), min_size=1, max_size=3),
    )
    def test_stale_observers_still_reach_a_collapsed_target(self, hops, observers):
        """References parked on other Cores while the chain collapsed
        underneath them must still resolve."""
        cluster = Cluster(CORES)
        counter = Counter(0, _core=cluster["a"])
        holders = [cluster.stub_at(name, counter) for name in sorted(observers)]
        for destination in hops:
            cluster.move_via_host(counter, destination)
        counter.increment()  # collapses the primary chain
        expected = 1
        for holder in holders:
            expected += 1
            assert holder.increment() == expected
