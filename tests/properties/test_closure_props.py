"""Property-based tests for closure scanning."""

from hypothesis import given, settings, strategies as st

from repro.complet.closure import compute_closure
from repro.cluster.workload import Echo_

json_values = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=16) | st.binary(max_size=32),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=6), children, max_size=4),
    max_leaves=15,
)


class TestClosureProperties:
    @settings(max_examples=50, deadline=None)
    @given(payload=json_values)
    def test_scan_never_mutates_the_anchor(self, payload):
        anchor = Echo_("x")
        anchor.cargo = payload
        import copy

        snapshot = copy.deepcopy(payload)
        compute_closure(anchor)
        assert anchor.cargo == snapshot

    @settings(max_examples=50, deadline=None)
    @given(payload=json_values)
    def test_size_positive_and_deterministic(self, payload):
        anchor = Echo_("x")
        anchor.cargo = payload
        first = compute_closure(anchor)
        second = compute_closure(anchor)
        assert first.size_bytes > 0
        assert first.size_bytes == second.size_bytes
        assert first.object_count == second.object_count

    @settings(max_examples=50, deadline=None)
    @given(payload=json_values, extra=st.binary(min_size=64, max_size=256))
    def test_size_monotone_under_growth(self, payload, extra):
        anchor = Echo_("x")
        anchor.cargo = payload
        before = compute_closure(anchor).size_bytes
        anchor.more = extra
        after = compute_closure(anchor).size_bytes
        assert after > before

    @settings(max_examples=30, deadline=None)
    @given(count=st.integers(min_value=0, max_value=5))
    def test_outgoing_count_matches_distinct_stub_attributes(self, count):
        from repro.cluster.cluster import Cluster
        from repro.cluster.workload import Echo

        cluster = Cluster(["a"])
        anchor = Echo_("holder")
        anchor._complet_id = None
        holder = Echo("holder", _core=cluster["a"])
        holder_anchor = cluster["a"].repository.get(holder._fargo_target_id)
        holder_anchor.refs = [Echo(f"t{i}", _core=cluster["a"]) for i in range(count)]
        info = compute_closure(holder_anchor)
        assert len(info.outgoing) == count
