"""Property-based tests for the script language front end."""

from hypothesis import given, settings, strategies as st

from repro.errors import ScriptError
from repro.script.ast import Literal
from repro.script.lexer import TokenKind, tokenize
from repro.script.parser import parse

identifiers = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s not in {"on", "do", "end", "move", "to", "log", "call", "retype",
                        "firedby", "from", "listenAt", "every", "completsIn", "coreOf"}
)
numbers = st.integers(min_value=0, max_value=10**6)
safe_text = st.text(
    alphabet=st.characters(blacklist_characters='"\'\\\n', min_codepoint=32, max_codepoint=126),
    max_size=20,
)


class TestLexerProperties:
    @settings(max_examples=60, deadline=None)
    @given(name=identifiers)
    def test_identifier_roundtrip(self, name):
        tokens = tokenize(name)
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == name

    @settings(max_examples=60, deadline=None)
    @given(value=numbers)
    def test_number_roundtrip(self, value):
        tokens = tokenize(str(value))
        assert tokens[0].kind is TokenKind.NUMBER
        assert int(tokens[0].value) == value

    @settings(max_examples=60, deadline=None)
    @given(text=safe_text)
    def test_string_roundtrip(self, text):
        tokens = tokenize(f'"{text}"')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == text

    @settings(max_examples=60, deadline=None)
    @given(name=identifiers, text=safe_text, value=numbers)
    def test_token_stream_stable_under_whitespace(self, name, text, value):
        compact = f'${name}=["{text}",{value}]'
        spaced = f'  ${name}  =  [ "{text}" ,  {value} ]  '
        compact_tokens = [(t.kind, t.value) for t in tokenize(compact)]
        spaced_tokens = [(t.kind, t.value) for t in tokenize(spaced)]
        assert compact_tokens == spaced_tokens


class TestParserProperties:
    @settings(max_examples=60, deadline=None)
    @given(name=identifiers, value=numbers)
    def test_assignment_parses(self, name, value):
        script = parse(f"${name} = {value}")
        assert script.assignments[0].name == name
        assert script.assignments[0].value == Literal(value)

    @settings(max_examples=60, deadline=None)
    @given(event=identifiers, threshold=numbers, var=identifiers)
    def test_generated_rules_parse(self, event, threshold, var):
        source = f"on {event}({threshold}) listenAt ${var} do log fired end"
        rule = parse(source).rules[0]
        assert rule.event == event
        assert rule.event_args == (Literal(threshold),)

    @settings(max_examples=60, deadline=None)
    @given(junk=st.text(max_size=40))
    def test_arbitrary_text_never_crashes_unexpectedly(self, junk):
        """The front end either parses or raises a ScriptError — nothing else."""
        try:
            parse(junk)
        except ScriptError:
            pass

    @settings(max_examples=40, deadline=None)
    @given(
        names=st.lists(identifiers, min_size=1, max_size=5, unique=True),
        values=st.lists(numbers, min_size=5, max_size=5),
    )
    def test_many_assignments_all_recorded(self, names, values):
        source = "\n".join(
            f"${name} = {value}" for name, value in zip(names, values, strict=False)
        )
        script = parse(source)
        assert len(script.assignments) == len(names)
