"""Property-based tests: the naming service against a model dictionary."""

from hypothesis import given, settings, strategies as st

from repro.errors import NameAlreadyBoundError, NameNotFoundError
from repro.cluster.cluster import Cluster
from repro.cluster.workload import Echo

names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=6
)
operations = st.lists(
    st.tuples(st.sampled_from(["bind", "rebind", "unbind", "lookup"]), names),
    max_size=30,
)


class TestNamingModel:
    @settings(max_examples=40, deadline=None)
    @given(ops=operations)
    def test_behaves_like_a_dict(self, ops):
        """Random op sequences agree with a plain dict model."""
        cluster = Cluster(["a"])
        naming = cluster["a"].naming
        stubs = {}
        model: dict[str, str] = {}
        for index, (op, name) in enumerate(ops):
            tag = f"{name}#{index}"
            if op in ("bind", "rebind"):
                stub = stubs.setdefault(tag, Echo(tag, _core=cluster["a"]))
                if op == "bind" and name in model:
                    try:
                        naming.bind(name, stub)
                        raise AssertionError("expected NameAlreadyBoundError")
                    except NameAlreadyBoundError:
                        pass
                else:
                    naming.bind(name, stub, replace=True)
                    model[name] = tag
            elif op == "unbind":
                if name in model:
                    naming.unbind(name)
                    del model[name]
                else:
                    try:
                        naming.unbind(name)
                        raise AssertionError("expected NameNotFoundError")
                    except NameNotFoundError:
                        pass
            else:  # lookup
                if name in model:
                    assert naming.lookup(name).ping() == model[name]
                else:
                    try:
                        naming.lookup(name)
                        raise AssertionError("expected NameNotFoundError")
                    except NameNotFoundError:
                        pass
        assert naming.names() == sorted(model)

    @settings(max_examples=25, deadline=None)
    @given(bound=st.lists(names, unique=True, max_size=8))
    def test_remote_view_matches_local(self, bound):
        cluster = Cluster(["a", "b"])
        for index, name in enumerate(bound):
            cluster["a"].bind(name, Echo(f"e{index}", _core=cluster["a"]))
        assert cluster["b"].naming.names_at("a") == sorted(bound)
        for name in bound:
            assert cluster["b"].naming.lookup_at("a", name).ping().startswith("e")
