"""Property-based tests for the task-farm application."""

from hypothesis import given, settings, strategies as st

from repro.apps.taskfarm import Farm
from repro.cluster.cluster import Cluster


class TestFarmProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        tasks=st.integers(min_value=0, max_value=40),
        workers=st.integers(min_value=1, max_value=4),
        batch=st.integers(min_value=1, max_value=6),
    )
    def test_every_task_completed_exactly_once(self, tasks, workers, batch):
        cluster = Cluster(["hub"] + [f"w{i}" for i in range(workers)])
        farm = Farm(cluster, "hub", [f"w{i}" for i in range(workers)], batch=batch)
        farm.submit(payload_size=256, count=tasks)
        farm.run_until_drained()
        assert farm.queue.remaining() == 0
        results = farm.queue.results()
        assert len(results) == tasks
        assert sorted(results) == list(range(tasks))

    @settings(max_examples=20, deadline=None)
    @given(
        tasks=st.integers(min_value=1, max_value=30),
        batch=st.integers(min_value=1, max_value=8),
    )
    def test_worker_counts_sum_to_tasks(self, tasks, batch):
        cluster = Cluster(["hub", "w0", "w1"])
        farm = Farm(cluster, "hub", ["w0", "w1"], batch=batch)
        farm.submit(payload_size=128, count=tasks)
        farm.run_until_drained()
        assert sum(w.done_so_far() for w in farm.workers) == tasks

    @settings(max_examples=15, deadline=None)
    @given(
        moves=st.lists(st.sampled_from(["hub", "w0", "w1"]), max_size=4),
        tasks=st.integers(min_value=1, max_value=20),
    )
    def test_drains_despite_worker_migrations(self, moves, tasks):
        """Moving workers around mid-run never loses or duplicates work."""
        cluster = Cluster(["hub", "w0", "w1"])
        farm = Farm(cluster, "hub", ["w0", "w1"], batch=3)
        farm.submit(payload_size=128, count=tasks)
        for index, destination in enumerate(moves):
            farm.round()
            worker = farm.workers[index % len(farm.workers)]
            handle = cluster.stub_at(cluster.locate(worker), worker)
            cluster.move(handle, destination)
        farm.run_until_drained()
        assert farm.queue.completed_count() == tasks
        assert sum(w.done_so_far() for w in farm.workers) == tasks
