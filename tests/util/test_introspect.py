"""Tests for class introspection used by the stub compiler."""

from repro.complet.anchor import Anchor
from repro.util.introspect import public_methods


class Base_(Anchor):
    def base_method(self):
        return "base"

    def overridden(self):
        return "base-version"

    def _private(self):
        return "hidden"


class Derived_(Base_):
    def derived_method(self):
        return "derived"

    def overridden(self):
        return "derived-version"


class TestPublicMethods:
    def test_own_methods_found(self):
        names = {name for name, _ in public_methods(Base_, stop_at=Anchor)}
        assert names == {"base_method", "overridden"}

    def test_private_excluded(self):
        names = {name for name, _ in public_methods(Base_, stop_at=Anchor)}
        assert "_private" not in names

    def test_inheritance_included(self):
        names = {name for name, _ in public_methods(Derived_, stop_at=Anchor)}
        assert names == {"base_method", "overridden", "derived_method"}

    def test_override_wins(self):
        methods = dict(public_methods(Derived_, stop_at=Anchor))
        assert methods["overridden"] is Derived_.__dict__["overridden"]

    def test_anchor_machinery_excluded(self):
        names = {name for name, _ in public_methods(Derived_, stop_at=Anchor)}
        assert "pre_departure" not in names
        assert "post_arrival" not in names

    def test_no_stop_class(self):
        class Plain:
            def visible(self):
                return 1

        names = {name for name, _ in public_methods(Plain)}
        assert names == {"visible"}
