"""Tests for payload sizing and human-readable rendering."""

import pytest

from repro.errors import SerializationError
from repro.util.bytesize import human_bytes, payload_size


class TestPayloadSize:
    def test_bytes_measured_directly(self):
        assert payload_size(b"x" * 100) == 100
        assert payload_size(bytearray(50)) == 50

    def test_pickle_size_grows_with_content(self):
        small = payload_size({"k": "v"})
        large = payload_size({"k": "v" * 10_000})
        assert large > small + 9_000

    def test_matches_wire_format(self):
        import pickle

        obj = {"a": [1, 2, 3], "b": "text"}
        assert payload_size(obj) == len(
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_unpicklable_raises(self):
        with pytest.raises(SerializationError):
            payload_size(lambda: None)


class TestHumanBytes:
    @pytest.mark.parametrize(
        ("size", "expected"),
        [
            (0, "0 B"),
            (512, "512 B"),
            (1024, "1.0 KB"),
            (1536, "1.5 KB"),
            (1024 * 1024, "1.0 MB"),
            (5 * 1024 * 1024 * 1024, "5.0 GB"),
        ],
    )
    def test_rendering(self, size, expected):
        assert human_bytes(size) == expected
