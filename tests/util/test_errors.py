"""Contract tests for the exception hierarchy (API stability)."""

import inspect

import pytest

import repro.errors as errors
from repro.errors import (
    CompletBoundaryError,
    CompletError,
    ConfigurationError,
    CoreDownError,
    CoreError,
    CoreUnreachableError,
    DanglingReferenceError,
    FarGoError,
    MonitoringError,
    MovementDeniedError,
    NameNotFoundError,
    NamingError,
    RelocationError,
    ScriptError,
    ScriptRuntimeError,
    ScriptSyntaxError,
    SerializationError,
    StampResolutionError,
    UnknownActionError,
)


class TestHierarchy:
    def test_every_error_derives_from_fargo_error(self):
        for _name, obj in inspect.getmembers(errors, inspect.isclass):
            if issubclass(obj, BaseException):
                assert issubclass(obj, FarGoError), obj

    @pytest.mark.parametrize(
        ("child", "parent"),
        [
            (CompletBoundaryError, CompletError),
            (DanglingReferenceError, CompletError),
            (StampResolutionError, RelocationError),
            (MovementDeniedError, RelocationError),
            (CoreDownError, CoreError),
            (CoreUnreachableError, CoreError),
            (NameNotFoundError, NamingError),
            (ScriptSyntaxError, ScriptError),
            (ScriptRuntimeError, ScriptError),
            (UnknownActionError, ScriptRuntimeError),
        ],
    )
    def test_family_relationships(self, child, parent):
        assert issubclass(child, parent)

    def test_catch_all_idiom(self):
        """Applications can catch the whole family with one clause."""
        try:
            raise StampResolutionError("no printer")
        except FarGoError as exc:
            assert "printer" in str(exc)

    def test_disjoint_families(self):
        assert not issubclass(CoreError, CompletError)
        assert not issubclass(MonitoringError, ScriptError)
        assert not issubclass(SerializationError, RelocationError)


class TestScriptSyntaxError:
    def test_location_in_message(self):
        exc = ScriptSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(exc)
        assert "column 7" in str(exc)
        assert exc.line == 3
        assert exc.column == 7

    def test_location_optional(self):
        exc = ScriptSyntaxError("just a message")
        assert str(exc) == "just a message"

    def test_configuration_error_standalone(self):
        assert issubclass(ConfigurationError, FarGoError)
