"""Tests for identifier generation and display forms."""

import threading

from repro.util.ids import CompletId, IdGenerator, TrackerId


class TestIdGenerator:
    def test_monotonic(self):
        gen = IdGenerator()
        values = [gen.next() for _ in range(100)]
        assert values == sorted(values)
        assert len(set(values)) == 100

    def test_start_offset(self):
        gen = IdGenerator(start=42)
        assert gen.next() == 42
        assert gen.next() == 43

    def test_thread_safety(self):
        gen = IdGenerator()
        results: list[int] = []
        lock = threading.Lock()

        def worker():
            local = [gen.next() for _ in range(500)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4000
        assert len(set(results)) == 4000


class TestCompletId:
    def test_str_with_type(self):
        cid = CompletId("technion", 3, "Message")
        assert str(cid) == "technion/c3:Message"

    def test_str_without_type(self):
        cid = CompletId("technion", 3)
        assert str(cid) == "technion/c3"

    def test_short_form(self):
        cid = CompletId("acadia", 7, "Printer")
        assert cid.short() == "Printer#7@acadia"

    def test_short_form_untyped(self):
        assert CompletId("x", 1).short() == "complet#1@x"

    def test_equality_and_hash(self):
        a = CompletId("c", 1, "T")
        b = CompletId("c", 1, "T")
        assert a == b
        assert hash(a) == hash(b)
        assert a != CompletId("c", 2, "T")

    def test_immutable(self):
        cid = CompletId("c", 1, "T")
        try:
            cid.serial = 5  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestTrackerId:
    def test_str(self):
        assert str(TrackerId("alpha", 9)) == "alpha/t9"

    def test_equality(self):
        assert TrackerId("a", 1) == TrackerId("a", 1)
        assert TrackerId("a", 1) != TrackerId("b", 1)
