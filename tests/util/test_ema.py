"""Tests for the exponential average and the rate meter."""

import pytest

from repro.errors import ConfigurationError
from repro.util.ema import ExponentialAverage, RateMeter


class TestExponentialAverage:
    def test_first_sample_initializes(self):
        avg = ExponentialAverage(alpha=0.3)
        assert avg.value == 0.0
        assert avg.add(10.0) == 10.0
        assert avg.value == 10.0

    def test_weighting(self):
        avg = ExponentialAverage(alpha=0.5)
        avg.add(10.0)
        assert avg.add(20.0) == pytest.approx(15.0)
        assert avg.add(20.0) == pytest.approx(17.5)

    def test_alpha_one_tracks_last_sample(self):
        avg = ExponentialAverage(alpha=1.0)
        avg.add(5.0)
        avg.add(99.0)
        assert avg.value == 99.0

    def test_sample_count(self):
        avg = ExponentialAverage()
        for i in range(5):
            avg.add(float(i))
        assert avg.samples == 5

    def test_reset(self):
        avg = ExponentialAverage()
        avg.add(3.0)
        avg.reset()
        assert avg.value == 0.0
        assert avg.samples == 0

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(ConfigurationError):
            ExponentialAverage(alpha=alpha)

    def test_converges_to_constant_input(self):
        avg = ExponentialAverage(alpha=0.3)
        avg.add(0.0)
        for _ in range(100):
            avg.add(7.0)
        assert avg.value == pytest.approx(7.0, abs=1e-6)


class TestRateMeter:
    def test_first_sample_anchors_window(self):
        meter = RateMeter()
        meter.mark(5)
        # The first sample cannot derive a rate: no prior window edge.
        assert meter.sample(1.0) == 0.0

    def test_rate_after_window(self):
        meter = RateMeter(alpha=1.0)
        meter.sample(0.0)
        for _ in range(10):
            meter.mark()
        assert meter.sample(1.0) == pytest.approx(10.0)

    def test_weighted_marks(self):
        meter = RateMeter(alpha=1.0)
        meter.sample(0.0)
        meter.mark(100.0)
        meter.mark(200.0)
        assert meter.sample(2.0) == pytest.approx(150.0)

    def test_total_is_cumulative(self):
        meter = RateMeter()
        meter.mark(2)
        meter.sample(1.0)
        meter.mark(3)
        assert meter.total == 5.0

    def test_zero_elapsed_keeps_rate(self):
        meter = RateMeter(alpha=1.0)
        meter.sample(0.0)
        meter.mark(4)
        rate = meter.sample(1.0)
        assert meter.sample(1.0) == rate  # same instant: no new window

    def test_idle_window_decays_rate(self):
        meter = RateMeter(alpha=0.5)
        meter.sample(0.0)
        meter.mark(10)
        high = meter.sample(1.0)
        low = meter.sample(2.0)  # no marks in second window
        assert low < high

    def test_reset(self):
        meter = RateMeter()
        meter.sample(0.0)
        meter.mark(5)
        meter.sample(1.0)
        meter.reset()
        assert meter.rate == 0.0
