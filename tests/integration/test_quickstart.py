"""Integration: the paper's Figure 3, end to end.

Figure 3 defines a ``Message`` complet, instantiates it with plain
constructor syntax, moves it to the Core "acadia", and invokes its print
method — all with local-programming syntax.  This test is that program.
"""

from repro import Anchor, Carrier, Cluster, compile_complet


class Message_(Anchor):
    """The anchor class of Figure 3."""

    def __init__(self, msg: str) -> None:
        self.msg = msg

    def print_message(self) -> str:
        return self.msg


Message = compile_complet(Message_)


class Task_(Anchor):
    """A complet started by a continuation after its move."""

    def __init__(self) -> None:
        self.ran_at = None

    def start(self, a1, a2) -> None:
        self.ran_at = (self.core.name, a1, a2)

    def result(self):
        return self.ran_at


Task = compile_complet(Task_)


class TestFigure3:
    def test_full_scenario(self):
        cluster = Cluster(["technion", "acadia"])
        # Message msg = new Message("Hello World");
        msg = Message("Hello World", _core=cluster["technion"])
        # Carrier.move(msg, "acadia");
        Carrier.move(msg, "acadia")
        # msg.print();
        assert msg.print_message() == "Hello World"
        assert cluster.locate(msg) == "acadia"

    def test_stub_class_is_named_like_the_anchor(self):
        assert Message.__name__ == "Message"
        assert Message_.__name__ == "Message_"

    def test_syntactic_transparency(self):
        """The program manipulates the stub exactly like the anchor."""
        cluster = Cluster(["technion", "acadia"])
        msg = Message("Hi", _core=cluster["technion"])
        # Same method name, same signature, same return value as a
        # direct call on a raw anchor object:
        assert msg.print_message() == Message_("Hi").print_message()

    def test_move_with_continuation_figure_form(self):
        """Carrier.move(msg, "acadia", "start", args) — §3.3's form."""
        cluster = Cluster(["technion", "acadia"])
        task = Task(_core=cluster["technion"])
        Carrier.move(task, "acadia", "start", ("a1", "a2"))
        cluster.drain()  # continuations run detached; let it fire
        assert task.result() == ("acadia", "a1", "a2")
