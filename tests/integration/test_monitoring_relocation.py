"""Integration: the §4.1 in-application relocation policy, via the API.

The paper's motivating policy: "move two disparate complets to the same
site only if the bandwidth between the sites is below some threshold
value and the invocationRate is above some threshold value.  Otherwise
keep them apart to spread the load."  This module encodes that policy
with the monitoring API (no scripts) and shows it reacting to changing
link conditions.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Client, Server


@pytest.fixture
def rig():
    cluster = Cluster(["site1", "site2"], bandwidth=1_000_000.0, latency=0.01)
    server = Server(_core=cluster["site2"], _at="site2")
    client = Client(server, _core=cluster["site1"])
    return cluster, client, server


class ColocationPolicy:
    """The §4.1 policy, in-application: API-only relocation programming."""

    def __init__(self, cluster, client, server, *, bw_threshold, rate_threshold):
        self.cluster = cluster
        self.client = client
        self.server = server
        self.bw_threshold = bw_threshold
        self.rate_threshold = rate_threshold
        self.decisions: list[str] = []
        core = cluster.core(cluster.locate(client))
        self.core = core
        self.cid = str(client._fargo_target_id)
        self.sid = str(server._fargo_target_id)
        core.profile_start("invocationRate", interval=1.0, src=self.cid, dst=self.sid)

    def evaluate(self):
        server_site = self.cluster.locate(self.server)
        client_site = self.cluster.locate(self.client)
        if client_site == server_site:
            return
        bandwidth = self.core.profile_instant("bandwidth", peer=server_site)
        rate = self.core.profile_get("invocationRate", src=self.cid, dst=self.sid)
        if bandwidth < self.bw_threshold and rate > self.rate_threshold:
            self.cluster.move(self.client, server_site)
            self.decisions.append(f"colocate@{server_site}")


class TestPolicy:
    def test_colocates_when_slow_link_and_chatty(self, rig):
        cluster, client, server = rig
        policy = ColocationPolicy(
            cluster, client, server, bw_threshold=500_000.0, rate_threshold=3.0
        )
        cluster.set_link("site1", "site2", bandwidth=100_000.0)  # degrade
        for _ in range(5):
            client.run(10)
            cluster.advance(1.0)
            policy.evaluate()
        assert cluster.locate(client) == "site2"
        assert policy.decisions == ["colocate@site2"]

    def test_stays_apart_on_fast_link(self, rig):
        cluster, client, server = rig
        policy = ColocationPolicy(
            cluster, client, server, bw_threshold=500_000.0, rate_threshold=3.0
        )
        for _ in range(5):
            client.run(10)
            cluster.advance(1.0)
            policy.evaluate()
        assert cluster.locate(client) == "site1"  # bandwidth is fine

    def test_stays_apart_when_quiet(self, rig):
        cluster, client, server = rig
        policy = ColocationPolicy(
            cluster, client, server, bw_threshold=500_000.0, rate_threshold=3.0
        )
        cluster.set_link("site1", "site2", bandwidth=100_000.0)
        for _ in range(5):
            client.run(1)  # low rate
            cluster.advance(1.0)
            policy.evaluate()
        assert cluster.locate(client) == "site1"

    def test_colocation_reduces_network_usage(self, rig):
        cluster, client, server = rig
        client.run(10)
        cluster.reset_stats()
        client.run(10)
        remote_bytes = cluster.stats.bytes
        cluster.move(client, "site2")
        cluster.reset_stats()
        client_colocated = cluster.stub_at("site2", client)
        client_colocated.run(10)
        local_bytes = cluster.stats.bytes
        assert local_bytes == 0
        assert remote_bytes > 5_000  # 10 calls, ~256 B each way + framing


class TestEventDrivenVariant:
    def test_threshold_events_drive_the_policy(self, rig):
        """Same policy, but asynchronous: no polling loop in the app."""
        cluster, client, server = rig
        core = cluster["site1"]
        cid = str(client._fargo_target_id)
        sid = str(server._fargo_target_id)

        def on_chatty(event):
            site = cluster.locate(server)
            bandwidth = core.profile_instant("bandwidth", peer=site)
            if bandwidth < 500_000.0:
                cluster.move(client, site)

        core.events.subscribe("invocationRate>3", on_chatty)
        core.monitor.watch("invocationRate", ">", 3.0, interval=1.0, src=cid, dst=sid)
        cluster.set_link("site1", "site2", bandwidth=100_000.0)
        for _ in range(5):
            client.run(10)
            cluster.advance(1.0)
        assert cluster.locate(client) == "site2"
