"""Tests for the replicated catalog sample application."""

import pytest

from repro.apps.catalog import Catalog, CatalogClient, CatalogFleet
from repro.cluster.cluster import Cluster


@pytest.fixture
def rig():
    cluster = Cluster(["hub", "edge1", "edge2"])
    return cluster


class TestCatalogComplet:
    def test_versioned_writes(self, rig):
        catalog = Catalog(_core=rig["hub"])
        assert catalog.put("a", 1) == 1
        assert catalog.put("b", 2) == 2
        assert catalog.get("a") == 1
        assert catalog.get_version() == 2

    def test_changes_since(self, rig):
        catalog = Catalog(_core=rig["hub"])
        catalog.put("a", 1)
        version, entries = catalog.changes_since(0)
        assert version == 1 and entries == {"a": 1}
        version, entries = catalog.changes_since(1)
        assert entries == {}


class TestReplicationByDuplicate:
    def test_snapshot_travels_with_client(self, rig):
        fleet = CatalogFleet(rig, "hub", ["edge1"])
        # One catalog copy now lives at edge1, next to the client:
        edge_complets = rig.complets_at("edge1")
        assert any("Catalog" in c and "Client" not in c for c in edge_complets)

    def test_reads_are_local_after_replication(self, rig):
        fleet = CatalogFleet(rig, "hub", ["edge1"])
        fleet.publish("k", "v")
        fleet.refresh_all()
        client = rig.stub_at("edge1", fleet.clients[0])
        rig.reset_stats()
        assert client.lookup("k") == "v"
        assert rig.stats.messages == 0  # served from the edge snapshot

    def test_snapshot_isolated_from_master(self, rig):
        fleet = CatalogFleet(rig, "hub", ["edge1"])
        fleet.publish("fresh", 1)
        client = rig.stub_at("edge1", fleet.clients[0])
        assert client.lookup("fresh") is None  # snapshot predates the write
        assert client.staleness() == 1

    def test_refresh_catches_up(self, rig):
        fleet = CatalogFleet(rig, "hub", ["edge1", "edge2"])
        fleet.publish("a", 1)
        fleet.publish("b", 2)
        assert fleet.refresh_all() == 4  # two versions x two clients
        assert fleet.read_everywhere("b") == [2, 2]
        client = rig.stub_at("edge1", fleet.clients[0])
        assert client.staleness() == 0

    def test_refresh_noop_when_current(self, rig):
        fleet = CatalogFleet(rig, "hub", ["edge1"])
        assert fleet.refresh_all() == 0

    def test_master_link_survives_replication(self, rig):
        """The client's master reference still reaches the hub master."""
        fleet = CatalogFleet(rig, "hub", ["edge1"])
        fleet.publish("x", 42)
        client = rig.stub_at("edge1", fleet.clients[0])
        assert client.staleness() == 1  # read over the master link

    def test_replication_saves_traffic_for_hot_reads(self, rig):
        """N local reads beat N remote reads once the snapshot ships."""
        fleet = CatalogFleet(rig, "hub", ["edge1"])
        for index in range(20):
            fleet.publish(f"k{index}", "v" * 100)
        fleet.refresh_all()
        client = rig.stub_at("edge1", fleet.clients[0])
        rig.reset_stats()
        for index in range(50):
            client.lookup(f"k{index % 20}")
        local_bytes = rig.stats.bytes

        # Reference point: the same reads straight at the master.
        remote_reader = CatalogClient(fleet.master, _core=rig["edge2"], _at="edge2")
        rig.reset_stats()
        for index in range(50):
            remote_reader.lookup(f"k{index % 20}")
        remote_bytes = rig.stats.bytes
        assert local_bytes == 0
        # 50 round trips of real traffic (the exact volume shrinks as the
        # wire framing gets leaner; what matters is remote >> local == 0).
        assert remote_bytes > 5_000
