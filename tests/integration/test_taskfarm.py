"""Tests for the task-farm sample application."""

import pytest

from repro.apps.taskfarm import Farm, FarmWorker, TaskQueue
from repro.cluster.cluster import Cluster


@pytest.fixture
def farm_cluster():
    return Cluster(["hub", "edge1", "edge2"], bandwidth=1_000_000.0)


class TestQueueComplet:
    def test_put_take_report_cycle(self, farm_cluster):
        queue = TaskQueue(_core=farm_cluster["hub"])
        assert queue.put(b"abc", copies=3) == 3
        batch = queue.take(2)
        assert [task_id for task_id, _payload in batch] == [0, 1]
        queue.report(0, 42)
        assert queue.remaining() == 1
        assert queue.completed_count() == 1

    def test_take_more_than_available(self, farm_cluster):
        queue = TaskQueue(_core=farm_cluster["hub"])
        queue.put(b"x", copies=2)
        assert len(queue.take(10)) == 2
        assert queue.take(1) == []


class TestWorkerComplet:
    def test_step_processes_batch(self, farm_cluster):
        queue = TaskQueue(_core=farm_cluster["hub"])
        queue.put(b"abc", copies=5)
        worker = FarmWorker(queue, 2, _core=farm_cluster["edge1"], _at="edge1")
        assert worker.step() == 2
        assert worker.done_so_far() == 2
        assert queue.completed_count() == 2

    def test_results_are_deterministic(self, farm_cluster):
        queue = TaskQueue(_core=farm_cluster["hub"])
        queue.put(b"abc", copies=2)
        worker = FarmWorker(queue, 2, _core=farm_cluster["hub"])
        worker.step()
        results = queue.results()
        assert results[0] == results[1] == sum(b"abc") % 65_521


class TestFarm:
    def test_drains_the_queue(self, farm_cluster):
        farm = Farm(farm_cluster, "hub", ["edge1", "edge2"], batch=3)
        farm.submit(payload_size=512, count=30)
        makespan = farm.run_until_drained()
        assert farm.queue.remaining() == 0
        assert farm.queue.completed_count() == 30
        assert makespan > 0

    def test_workers_share_the_load(self, farm_cluster):
        farm = Farm(farm_cluster, "hub", ["edge1", "edge2"], batch=5)
        farm.submit(payload_size=128, count=20)
        farm.run_until_drained()
        done = [w.done_so_far() for w in farm.workers]
        assert sum(done) == 20
        assert all(d > 0 for d in done)

    def test_adaptive_placement_colocates_on_slow_link(self, farm_cluster):
        farm = Farm(farm_cluster, "hub", ["edge1"], batch=4)
        farm.enable_adaptive_placement(
            byte_rate_threshold=1_000.0, bandwidth_threshold=500_000.0
        )
        farm_cluster.set_link("hub", "edge1", bandwidth=100_000.0)
        farm.submit(payload_size=4_096, count=40)
        farm.run_until_drained()
        assert farm.cluster.locate(farm.workers[0]) == "hub"
        assert farm.relocations == ["edge1->hub"]

    def test_no_relocation_on_fast_link(self, farm_cluster):
        farm = Farm(farm_cluster, "hub", ["edge1"], batch=4)
        farm.enable_adaptive_placement(
            byte_rate_threshold=1_000.0, bandwidth_threshold=500_000.0
        )
        farm.submit(payload_size=4_096, count=40)
        farm.run_until_drained()
        assert farm.cluster.locate(farm.workers[0]) == "edge1"
        assert farm.relocations == []

    def test_adaptive_beats_static_on_slow_link(self):
        def makespan(adaptive: bool) -> float:
            cluster = Cluster(["hub", "edge1"], bandwidth=80_000.0)
            farm = Farm(cluster, "hub", ["edge1"], batch=4)
            if adaptive:
                farm.enable_adaptive_placement(
                    byte_rate_threshold=1_000.0, bandwidth_threshold=500_000.0
                )
            farm.submit(payload_size=8_192, count=40)
            return farm.run_until_drained()

        assert makespan(adaptive=True) < makespan(adaptive=False)

    def test_progress_report(self, farm_cluster):
        farm = Farm(farm_cluster, "hub", ["edge1", "edge2"])
        farm.submit(payload_size=128, count=8)
        farm.round()
        progress = farm.progress()
        assert progress["completed"] == 8
        assert progress["worker_locations"] == ["edge1", "edge2"]
