"""Integration: dynamic layout beats static layout (the paper's thesis).

The introduction argues that "static component layout might lead to low
resource utilization [and] high network-latency ... it is impossible to
set a priori the structure of the application in a way that best
leverages the dynamically changing computing and networking resources."
This module builds a workload whose affinity shifts halfway through and
shows that *no* static placement matches the adaptive policy on total
simulated network time.  (benchmarks/bench_adaptive_layout.py sweeps
this scenario; here we assert the qualitative outcome.)
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Client, Server
from repro.script.interpreter import ScriptEngine


def _run_scenario(*, adaptive: bool, client_home: str) -> float:
    """A client that talks to server1 first, then to server2.

    Servers are pinned (site-bound resources); only the client may move.
    Returns total simulated network seconds.
    """
    cluster = Cluster(["site1", "site2"], bandwidth=200_000.0, latency=0.02)
    server1 = Server(reply_size=4_096, _core=cluster["site1"], _at="site1")
    server2 = Server(reply_size=4_096, _core=cluster["site2"], _at="site2")
    client = Client(server1, request_size=2_048, _core=cluster[client_home], _at=client_home)

    engine = None
    if adaptive:
        engine = ScriptEngine(cluster, home="site1")
        engine._globals.update({"c": client, "s1": server1, "s2": server2})
        engine.run(
            "on methodInvokeRate(2) from $c to $s1 do move $c to coreOf $s1 end\n"
            "on methodInvokeRate(2) from $c to $s2 do move $c to coreOf $s2 end"
        )

    cluster.reset_stats()
    # Phase 1: chatty with server1.
    for _ in range(6):
        client.run(8)
        cluster.advance(1.0)
    # Phase change: the client now needs server2.
    host = cluster.core(cluster.locate(client))
    anchor = host.repository.get(client._fargo_target_id)
    anchor.server = cluster.stub_at(host.name, server2)
    for _ in range(6):
        fresh = cluster.stub_at(cluster.locate(client), client)
        fresh.run(8)
        cluster.advance(1.0)
    return cluster.stats.seconds


class TestAdaptiveBeatsStatic:
    @pytest.mark.parametrize("static_home", ["site1", "site2"])
    def test_adaptive_beats_each_static_placement(self, static_home):
        static_cost = _run_scenario(adaptive=False, client_home=static_home)
        adaptive_cost = _run_scenario(adaptive=True, client_home="site1")
        assert adaptive_cost < static_cost

    def test_adaptive_follows_the_phase_change(self):
        cluster = Cluster(["site1", "site2"], bandwidth=200_000.0)
        server1 = Server(_core=cluster["site1"], _at="site1")
        server2 = Server(_core=cluster["site2"], _at="site2")
        client = Client(server1, _core=cluster["site2"], _at="site2")
        engine = ScriptEngine(cluster, home="site1")
        engine._globals.update({"c": client, "s1": server1})
        engine.run("on methodInvokeRate(2) from $c to $s1 do move $c to coreOf $s1 end")
        for _ in range(5):
            client.run(8)
            cluster.advance(1.0)
        assert cluster.locate(client) == "site1"
