"""Integration: persistence composed with scripts, registry, and failures."""

import pytest

from repro.core.persistence import Snapshot, restore, snapshot
from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter, DataSource, Worker
from repro.script.interpreter import ScriptEngine


class TestScriptedCheckpoints:
    def test_periodic_checkpoint_rule(self, cluster):
        """A script action checkpoints a complet on every threshold event."""
        counter = Counter(0, _core=cluster["alpha"])
        vault: list[bytes] = []

        def checkpoint(ctx, stub):
            host = ctx.engine.cluster.core(ctx.engine.cluster.locate(stub))
            vault.append(snapshot(host, stub).to_bytes())

        engine = ScriptEngine(cluster, home="beta")
        engine.register_action("checkpoint", checkpoint)
        engine._globals["c"] = counter
        engine.run(
            'on completLoad(0, ">=") listenAt [alpha] every 2 do'
            " call checkpoint($c) end"
        )
        counter.increment(5)
        cluster.advance(2.5)
        assert len(vault) == 1
        # The checkpoint captured the pre-crash state:
        cluster.network.set_node_down("alpha")
        recovered = restore(cluster["beta"], Snapshot.from_bytes(vault[-1]))
        assert recovered.read() == 5

    def test_checkpoint_then_move_then_checkpoint(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        first = snapshot(cluster["alpha"], counter)
        counter.increment(3)
        cluster.move(counter, "beta")
        counter.increment(4)
        second = snapshot(cluster["beta"], counter)
        old = restore(cluster["alpha"], first)
        new = restore(cluster["alpha"], second)
        assert old.read() == 0
        assert new.read() == 7


class TestRegistryInterplay:
    def test_restored_copy_registers_cleanly(self):
        cluster = Cluster(["a", "b"], use_location_registry=True)
        counter = Counter(9, _core=cluster["a"])
        snap = snapshot(cluster["a"], counter)
        restored = restore(cluster["b"], snap)
        # The copy has its own identity; moving it updates its own home.
        cluster.move(restored, "a")
        location = cluster["b"].locator.resolve(restored._fargo_target_id)
        assert location is not None and location.core == "a"

    def test_identity_reclaim_after_registry_forgets(self):
        cluster = Cluster(["a", "b"], use_location_registry=True)
        counter = Counter(2, _core=cluster["a"])
        snap = snapshot(cluster["a"], counter)
        cluster["a"].repository.destroy(counter._fargo_target_id)
        # Never moved: the registry has no record, identity is free.
        revenant = restore(cluster["a"], snap, keep_identity=True)
        assert revenant._fargo_target_id == counter._fargo_target_id


class TestReferenceRecovery:
    def test_restored_worker_reaches_moved_source(self, cluster3):
        source = DataSource(100, _core=cluster3["alpha"])
        worker = Worker(source, _core=cluster3["alpha"])
        snap = snapshot(cluster3["alpha"], worker)
        cluster3.move(source, "gamma")
        cluster3.move(worker, "beta")  # the original also moves
        restored = restore(cluster3["beta"], snap)
        # Both the original and the restored copy read the same source.
        assert restored.work(1) == 100
        assert worker.work(1) == 100
        anchor = cluster3["gamma"].repository.get(source._fargo_target_id)
        assert anchor.reads == 2
