"""Integration: supervised multi-process deployments that heal themselves.

Each test SIGKILLs (or exhausts the restart budget of) a real child
process and checks the :class:`~repro.cluster.supervisor.Supervisor`
end-to-end: death detected via ``waitpid``, the successor respawned on
the preallocated port, durable checkpoints replayed identity-preserving
from the shared :class:`~repro.recovery.FileCheckpointStore`, and the
surviving deployment repaired so pre-kill references keep working.
"""

from __future__ import annotations

import os
import signal
import tempfile
import time

import pytest

from repro.cluster import CoreProcesses, RestartPolicy, Supervisor
from repro.recovery import FileCheckpointStore
from tests.anchors import Holder, Probe

pytestmark = pytest.mark.tcp

CHECKPOINT_INTERVAL = 0.2


def wait_until(predicate, timeout: float = 20.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def hosted_at(procs: CoreProcesses, core_name: str) -> set[str]:
    return set(procs.driver.admin(core_name, "complets"))


def wait_for_checkpoint(checkpoint_dir: str, core_name: str) -> None:
    """Block until the child's periodic sweep has persisted something."""
    store = FileCheckpointStore(checkpoint_dir)
    assert wait_until(lambda: len(store.hosted_at(core_name)) > 0), (
        f"no durable checkpoint for {core_name} appeared in {checkpoint_dir}"
    )


def child_state(supervisor: Supervisor, name: str) -> dict:
    return supervisor.state()["children"][name]


@pytest.fixture()
def deployment():
    """Fresh two-child supervised deployment with durable checkpoints.

    Function-scoped on purpose: every test kills children, so no state
    may leak between tests.
    """
    checkpoint_dir = tempfile.mkdtemp(prefix="repro-supervised-")
    with CoreProcesses(
        ["alpha", "beta"],
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=CHECKPOINT_INTERVAL,
    ) as procs:
        yield procs, checkpoint_dir
    import shutil

    shutil.rmtree(checkpoint_dir, ignore_errors=True)


class TestIdentityPreservingRestart:
    def test_sigkill_mid_traffic_restores_identity(self, deployment):
        procs, checkpoint_dir = deployment
        with Supervisor(procs) as supervisor:
            probe = Probe(_core=procs.driver, _at="alpha")
            probe.note("pre-kill")
            original_id = str(probe._fargo_target_id)
            wait_for_checkpoint(checkpoint_dir, "alpha")

            old_pid = procs.processes["alpha"].pid
            os.kill(old_pid, signal.SIGKILL)
            assert wait_until(
                lambda: child_state(supervisor, "alpha")["restarts"] >= 1
                and child_state(supervisor, "alpha")["status"] == "running"
            ), f"alpha never healed: {child_state(supervisor, 'alpha')}"

            # A genuinely new process, hosting the *same* complet identity.
            assert procs.processes["alpha"].pid != old_pid
            assert original_id in hosted_at(procs, "alpha")
            # The pre-kill stub completes an invocation against the
            # reborn host, and the checkpointed state survived.
            probe.note("post-rebirth")
            history = probe.get_history()
            assert "pre-kill" in history
            assert "post-rebirth" in history

            state = child_state(supervisor, "alpha")
            assert state["last_exit"] == "signal SIGKILL"
            assert state["last_mttr"] is not None and state["last_mttr"] > 0.0

    def test_restart_metrics_and_spans(self, deployment):
        procs, checkpoint_dir = deployment
        procs.driver.tracer.enabled = True
        with Supervisor(procs) as supervisor:
            probe = Probe(_core=procs.driver, _at="beta")
            probe.note("x")
            wait_for_checkpoint(checkpoint_dir, "beta")
            procs.processes["beta"].kill()
            assert wait_until(
                lambda: child_state(supervisor, "beta")["restarts"] >= 1
            )
            assert procs.driver.metrics.counter("supervisor.restarts").value >= 1
            histogram = procs.driver.metrics.histogram("supervisor.mttr")
            assert histogram.count >= 1
            names = [span.name for span in procs.driver.tracer.spans()]
            assert "supervisor:restart" in names


class TestEscalation:
    def test_budget_exhaustion_escalates_to_fresh_identity(self, deployment):
        procs, checkpoint_dir = deployment
        # Zero budget: the very first death is a permanent failure.
        policy = RestartPolicy(max_restarts=0)
        with Supervisor(procs, policies={"alpha": policy}) as supervisor:
            probe = Probe(_core=procs.driver, _at="alpha")
            probe.note("will-be-escalated")
            original_id = str(probe._fargo_target_id)
            wait_for_checkpoint(checkpoint_dir, "alpha")

            procs.processes["alpha"].kill()
            # "failed" is set the moment the decision is made; the
            # fresh-identity restores land moments later.
            assert wait_until(
                lambda: child_state(supervisor, "alpha")["escalated_to"]
            ), "no fresh-identity restore happened"
            state = child_state(supervisor, "alpha")
            assert state["status"] == "failed"
            assert state["restarts"] == 0
            # Restored on the survivor, under a *different* identity.
            survivor_hosted = hosted_at(procs, "beta")
            for new_id in state["escalated_to"]:
                assert new_id in survivor_hosted
                assert new_id != original_id
            assert procs.driver.metrics.counter("supervisor.escalations").value >= 1


class TestDurableCheckpoints:
    def test_checkpoints_readable_across_processes(self, deployment):
        """The parent reads records the child process wrote, and the
        respawned child restores exactly those records."""
        procs, checkpoint_dir = deployment
        probe = Probe(_core=procs.driver, _at="alpha")
        probe.note("persisted")
        wait_for_checkpoint(checkpoint_dir, "alpha")

        store = FileCheckpointStore(checkpoint_dir)
        records = store.hosted_at("alpha")
        assert [str(record.complet_id) for record in records] == [
            str(probe._fargo_target_id)
        ]
        assert records[0].host == "alpha"
        assert len(records[0].data) > 0

    def test_regenerating_state_advances_generations(self, deployment):
        procs, checkpoint_dir = deployment
        probe = Probe(_core=procs.driver, _at="alpha")
        probe.note("gen-1")
        wait_for_checkpoint(checkpoint_dir, "alpha")
        store = FileCheckpointStore(checkpoint_dir)
        cid = store.by_str(str(probe._fargo_target_id)).complet_id
        first = store.generations(cid)[-1]["gen"]
        probe.note("gen-2")
        assert wait_until(
            lambda: store.generations(cid)[-1]["gen"] > first
        ), "mutated complet never produced a newer durable generation"


class TestTransportReconnect:
    def test_survivor_reference_works_after_rebirth(self, deployment):
        """A stub held by a *survivor* child (not just the driver) keeps
        working once its target Core is killed and reborn."""
        procs, checkpoint_dir = deployment
        with Supervisor(procs) as supervisor:
            probe = Probe(_core=procs.driver, _at="alpha")
            holder = Holder(_core=procs.driver, _at="beta")
            holder.set_ref(probe)
            holder.get_ref().note("before-kill")
            wait_for_checkpoint(checkpoint_dir, "alpha")

            procs.processes["alpha"].kill()
            assert wait_until(
                lambda: child_state(supervisor, "alpha")["restarts"] >= 1
                and child_state(supervisor, "alpha")["status"] == "running"
            )
            # beta's pooled connection and trackers were repaired during
            # re-admission; the held stub reaches the reborn alpha.
            holder.get_ref().note("after-rebirth")
            history = probe.get_history()
            assert "before-kill" in history
            assert "after-rebirth" in history

    def test_driver_probe_and_admin_after_rebirth(self, deployment):
        procs, checkpoint_dir = deployment
        with Supervisor(procs) as supervisor:
            Probe(_core=procs.driver, _at="alpha")
            wait_for_checkpoint(checkpoint_dir, "alpha")
            procs.processes["alpha"].kill()
            assert wait_until(
                lambda: child_state(supervisor, "alpha")["restarts"] >= 1
            )
            assert procs.transport.probe("alpha", timeout=2.0)
            snapshot = procs.driver.admin("alpha", "snapshot")
            assert snapshot["core"] == "alpha"
            admin_state = procs.driver.admin(procs.driver.name, "supervisor")
            assert admin_state["children"]["alpha"]["restarts"] >= 1
