"""Integration: failure injection meets layout policies."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.workload import Counter, Echo
from repro.script.interpreter import ScriptEngine


class TestScriptedReliability:
    def test_timed_shutdown_triggers_evacuation(self):
        """Failure injection + the reliability rule = automatic rescue."""
        cluster = Cluster(["w1", "w2", "safe"])
        engine = ScriptEngine(cluster, home="safe")
        engine.run(
            "on shutdown firedby $core listenAt [w1, w2] do"
            " move completsIn $core to safe end"
        )
        inject = FailureInjector(cluster)
        stubs = [Echo(f"e{i}", _core=cluster["w1"], _at="w1") for i in range(3)]
        inject.shutdown_core_at(10.0, "w1")
        cluster.advance(10.0)
        assert len(cluster.complets_at("safe")) == 3
        for i, stub in enumerate(stubs):
            assert cluster.stub_at("safe", stub).ping() == f"e{i}"

    def test_cascading_shutdowns(self):
        cluster = Cluster(["w1", "w2", "safe"])
        engine = ScriptEngine(cluster, home="safe")
        engine.run(
            "on shutdown firedby $core do move completsIn $core to safe end"
        )
        inject = FailureInjector(cluster)
        Echo("a", _core=cluster["w1"], _at="w1")
        Echo("b", _core=cluster["w2"], _at="w2")
        inject.shutdown_core_at(5.0, "w1")
        inject.shutdown_core_at(6.0, "w2")
        cluster.advance(10.0)
        assert len(cluster.complets_at("safe")) == 2

    def test_crash_gives_no_chance_to_evacuate(self):
        """A hard crash (no event) strands the complets — by design."""
        cluster = Cluster(["w1", "safe"])
        engine = ScriptEngine(cluster, home="safe")
        engine.run("on shutdown firedby $core do move completsIn $core to safe end")
        inject = FailureInjector(cluster)
        Echo("lost", _core=cluster["w1"], _at="w1")
        inject.crash_core_at(5.0, "w1")
        cluster.advance(10.0)
        assert cluster.complets_at("safe") == []


class TestPartitionBehaviour:
    def test_partition_isolates_then_heals(self):
        cluster = Cluster(["a", "b"])
        inject = FailureInjector(cluster)
        counter = Counter(0, _core=cluster["a"])
        cluster.move(counter, "b")
        inject.partition_at(1.0, {"a"}, {"b"})
        inject.heal_at(5.0)
        cluster.advance(1.0)
        from repro.errors import CoreUnreachableError

        with pytest.raises(CoreUnreachableError):
            counter.increment()
        cluster.advance(4.0)
        assert counter.increment() == 1

    def test_move_fails_cleanly_across_partition(self):
        """A move into the other partition aborts; the complet stays."""
        cluster = Cluster(["a", "b"])
        counter = Counter(7, _core=cluster["a"])
        cluster.partition({"a"}, {"b"})
        from repro.errors import CoreUnreachableError

        with pytest.raises(CoreUnreachableError):
            cluster.move(counter, "b")
        assert cluster.locate(counter) == "a"
        assert counter.read() == 7  # state intact after aborted move


class TestPartitionSemantics:
    def test_ungrouped_nodes_form_an_implicit_group(self):
        """Nodes not named in any partition group stay mutually reachable
        but cannot reach grouped nodes — the 'mainland' semantics."""
        cluster = Cluster(["a", "b", "c", "d"])
        echo_c = Echo("on-c", _core=cluster["b"], _at="c")
        cluster.partition({"a"})  # b, c, d are the implicit mainland
        assert echo_c.ping() == "on-c"  # b -> c still flows
        assert cluster.stub_at("d", echo_c).ping() == "on-c"  # d -> c too
        from repro.errors import CoreUnreachableError

        with pytest.raises(CoreUnreachableError):
            cluster["a"].admin("b", "complets")  # a is off the mainland

    def test_island_cannot_reach_the_mainland(self):
        cluster = Cluster(["a", "b", "c"])
        echo = Echo("on-b", _core=cluster["a"], _at="b")
        cluster.partition({"a"})
        from repro.errors import CoreUnreachableError

        with pytest.raises(CoreUnreachableError):
            echo.ping()  # a -> b crosses the island boundary
        # The mainland (b, c) is internally intact.
        assert cluster.stub_at("c", echo).ping() == "on-b"


class TestScriptedMoveRetry:
    def test_move_failed_rule_retries_after_heal(self):
        """The acceptance scenario: a move hits a cut link and aborts; the
        scripting layer observes ``moveFailed`` and re-issues the move
        after the outage heals; the retried move succeeds."""
        from repro.core.events import MOVE_FAILED

        cluster = Cluster(["a", "b"])
        engine = ScriptEngine(cluster, home="a")
        engine.run("on moveFailed do call retryMove(6) end")
        events = []
        cluster["a"].events.subscribe(MOVE_FAILED, events.append)
        inject = FailureInjector(cluster)
        inject.outage_at(1.0, "a", "b", 5.0)  # cut at t=1, heal at t=6
        counter = Counter(10, _core=cluster["a"])
        counter.increment()

        cluster.advance(2.0)  # into the outage
        from repro.errors import CoreUnreachableError

        with pytest.raises(CoreUnreachableError):
            cluster.move(counter, "b")
        # The abort kept the group consistent and observable.
        assert cluster.locate(counter) == "a"
        assert counter.read() == 11
        assert events and events[0].data["destination"] == "b"
        rule = engine.active_rules[0]
        assert rule.fired_count == 1  # the script saw the failure

        cluster.advance(6.0)  # past the heal and the scheduled retry
        assert cluster.locate(counter) == "b"
        assert counter.increment() == 12
        assert any("retried move" in line for line in engine.log)


class TestDegradedLinks:
    def test_transfer_times_grow_after_degradation(self):
        cluster = Cluster(["a", "b"])
        inject = FailureInjector(cluster)
        inject.degrade_link_at(1.0, "a", "b", bandwidth=1_000.0)
        echo = Echo("x", _core=cluster["a"])
        cluster.move(echo, "b")
        cluster.advance(1.0)
        t0 = cluster.now
        echo.echo(bytes(10_000))
        slow_elapsed = cluster.now - t0
        assert slow_elapsed > 10.0  # 10 KB at 1 KB/s, both directions

    def test_monitoring_observes_the_degradation(self):
        cluster = Cluster(["a", "b"])
        inject = FailureInjector(cluster)
        inject.degrade_link_at(5.0, "a", "b", bandwidth=10_000.0)
        before = cluster["a"].profile_instant("bandwidth", peer="b")
        cluster.advance(6.0)
        after = cluster["a"].profile_instant("bandwidth", peer="b", use_cache=False)
        assert before == pytest.approx(1_000_000.0, rel=0.05)
        assert after == pytest.approx(10_000.0, rel=0.05)
