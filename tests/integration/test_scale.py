"""Integration: the runtime at wide-area scale.

§1's setting is "a large number of interconnected nodes"; this module
sanity-checks the runtime well beyond the sizes other tests use: dozens
of Cores, hundreds of complets, random migration storms, cluster-wide
monitoring — all deterministic under the virtual clock (seeded RNG).
"""

import random

from repro.cluster.cluster import Cluster
from repro.cluster.topology import configure_wan
from repro.cluster.workload import Counter, Echo
from repro.script.interpreter import ScriptEngine


def test_many_cores_many_complets():
    names = [f"n{i:02d}" for i in range(24)]
    cluster = Cluster(names)
    stubs = []
    rng = random.Random(42)
    for index in range(120):
        home = rng.choice(names)
        stubs.append(Counter(index, _core=cluster[home], _at=home))
    # Migration storm: 300 random host-driven moves.
    for _ in range(300):
        stub = rng.choice(stubs)
        cluster.move_via_host(stub, rng.choice(names))
    # Every complet is still reachable and stateful.
    for index, stub in enumerate(stubs):
        assert stub.read() == index
    # Exactly 120 complets across all Cores.
    total = sum(len(core.repository) for core in cluster)
    assert total == 120
    # GC converges and nothing breaks afterwards.
    cluster.collect_all_trackers()
    for stub in stubs[:10]:
        stub.increment()


def test_wan_sites_with_script_policy():
    sites = {f"site{s}": [f"s{s}c{c}" for c in range(3)] for s in range(4)}
    names = [core for cores in sites.values() for core in cores]
    cluster = Cluster(names)
    configure_wan(cluster, sites, wan_bandwidth=100_000.0)
    engine = ScriptEngine(cluster, home=names[0])
    engine.run(
        "on shutdown firedby $core do move completsIn $core to s0c0 end"
    )
    rng = random.Random(7)
    stubs = [
        Echo(f"e{i}", _core=cluster[rng.choice(names)], _at=rng.choice(names))
        for i in range(40)
    ]
    # Shut down an entire site; everything lands at the safe Core.
    for core_name in sites["site3"]:
        cluster.shutdown_core(core_name)
    hosted = sum(len(core.repository) for core in cluster.running_cores())
    assert hosted == 40
    for stub in stubs:
        assert cluster.stub_at("s0c0", stub).ping().startswith("e")


def test_cluster_wide_monitoring_scales():
    names = [f"m{i}" for i in range(12)]
    cluster = Cluster(names)
    for name in names:
        cluster[name].monitor.watch("completLoad", ">", 5.0, interval=1.0)
        Echo("x", _core=cluster[name], _at=name)
    cluster.advance(30.0)
    for name in names:
        assert cluster[name].profiler.evaluations["completLoad"] == 30
    # 12 cores × 30 samples; scheduler drained cleanly.
    assert cluster.scheduler.pending == 12  # one live sampler per core


def test_registry_mode_at_scale():
    names = [f"r{i}" for i in range(10)]
    cluster = Cluster(names, use_location_registry=True)
    rng = random.Random(3)
    stubs = [Counter(0, _core=cluster[names[0]]) for _ in range(30)]
    for _ in range(150):
        cluster.move_via_host(rng.choice(stubs), rng.choice(names))
    # Homes know where everything is; all references resolve in O(1).
    home = cluster[names[0]]
    for stub in stubs:
        location = home.locator.resolve(stub._fargo_target_id)
        if location is not None:
            assert cluster.core(location.core).repository.hosts(
                stub._fargo_target_id
            )
        assert stub.increment() >= 1
