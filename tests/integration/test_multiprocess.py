"""Integration: Cores as separate OS processes, talking real TCP.

``CoreProcesses`` spawns each named Core as its own Python interpreter
(``python -m repro.cluster.launch --serve ...``) and keeps a driver
Core in this process on its own hub.  Everything below — remote
instantiation, invocation, movement, admin — crosses genuine process
and socket boundaries.
"""

from __future__ import annotations

import pytest

from repro.cluster import CoreProcesses
from tests.anchors import Failing, Holder, Probe

pytestmark = pytest.mark.tcp


@pytest.fixture(scope="module")
def procs():
    with CoreProcesses(["alpha", "beta"]) as deployment:
        yield deployment


def hosted_at(procs: CoreProcesses, core_name: str) -> set[str]:
    return set(procs.driver.admin(core_name, "complets"))


class TestAcrossProcesses:
    def test_children_are_separate_interpreters(self, procs):
        import os

        pids = {process.pid for process in procs.processes.values()}
        assert len(pids) == 2
        assert os.getpid() not in pids
        for process in procs.processes.values():
            assert process.poll() is None  # still serving

    def test_remote_instantiation_and_invocation(self, procs):
        probe = Probe(_core=procs.driver, _at="alpha")
        probe.note("hello-from-driver")
        assert "hello-from-driver" in probe.get_history()
        assert str(probe._fargo_target_id) in hosted_at(procs, "alpha")

    def test_movement_between_processes(self, procs):
        probe = Probe(_core=procs.driver, _at="alpha")
        procs.driver.move(probe, "beta")
        assert str(probe._fargo_target_id) in hosted_at(procs, "beta")
        assert str(probe._fargo_target_id) not in hosted_at(procs, "alpha")
        history = probe.get_history()
        assert "pre_departure:beta" in history
        assert "post_arrival:beta" in history

    def test_state_travels_with_the_complet(self, procs):
        probe = Probe(_core=procs.driver, _at="alpha")
        probe.note("before-move")
        procs.driver.move(probe, "beta")
        probe.note("after-move")
        history = probe.get_history()
        assert "before-move" in history and "after-move" in history

    def test_application_exception_crosses_the_socket(self, procs):
        failing = Failing(_core=procs.driver, _at="beta")
        with pytest.raises(ValueError, match="boom"):
            failing.boom()

    def test_reference_passing_between_children(self, procs):
        """A stub handed from the driver works from another child."""
        probe = Probe(_core=procs.driver, _at="alpha")
        holder = Holder(_core=procs.driver, _at="beta")
        holder.set_ref(probe)
        holder.get_ref().note("beta-held")
        assert "beta-held" in probe.get_history()

    def test_admin_snapshot(self, procs):
        snapshot = procs.driver.admin("alpha", "snapshot")
        assert snapshot["core"] == "alpha"
