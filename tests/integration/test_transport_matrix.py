"""Integration: the same application scenarios over both transports.

Every test here is parametrized over the transport backend — the
deterministic simnet and the real asyncio/TCP hubs (one per Core,
in-process, real sockets on loopback).  The application code is
byte-for-byte identical; only the ``transport=`` knob differs, which is
the point of the pluggable transport seam.
"""

from __future__ import annotations

import pytest

from repro import Carrier, Cluster
from repro.errors import CoreError, RelocationError
from tests.anchors import Failing, Holder, Probe

BACKENDS = [
    pytest.param("sim", id="sim"),
    pytest.param("tcp", id="tcp", marks=pytest.mark.tcp),
]


@pytest.fixture(params=BACKENDS)
def cluster(request):
    cluster = Cluster(["alpha", "beta", "gamma"], transport=request.param)
    yield cluster
    cluster.close()


class TestRpc:
    def test_remote_invocation(self, cluster):
        probe = Probe(_core=cluster["alpha"])
        Carrier.move(probe, "beta")
        probe.note("over-the-wire")
        assert "over-the-wire" in probe.get_history()

    def test_application_exception_propagates_by_value(self, cluster):
        failing = Failing(_core=cluster["alpha"], _at="beta")
        with pytest.raises(ValueError, match="boom"):
            failing.boom()

    def test_complet_reference_as_argument_and_result(self, cluster):
        probe = Probe(_core=cluster["alpha"], _at="beta")
        holder = Holder(_core=cluster["alpha"])
        holder.set_ref(probe)
        Carrier.move(holder, "gamma")
        returned = holder.get_ref()
        returned.note("via-returned-ref")
        assert "via-returned-ref" in probe.get_history()


class TestMovement:
    def test_move_then_invoke(self, cluster):
        probe = Probe(_core=cluster["alpha"])
        Carrier.move(probe, "beta")
        assert cluster.locate(probe) == "beta"
        Carrier.move(probe, "gamma")
        assert cluster.locate(probe) == "gamma"
        history = probe.get_history()
        assert history.count("pre_departure:beta") == 1
        assert "post_arrival:gamma" in history

    def test_move_to_unknown_core_is_refused(self, cluster):
        probe = Probe(_core=cluster["alpha"])
        with pytest.raises((RelocationError, CoreError)):
            Carrier.move(probe, "nowhere")
        assert cluster.locate(probe) == "alpha"


class TestRemoteInstantiation:
    def test_instantiate_at(self, cluster):
        probe = Probe(_core=cluster["alpha"], _at="gamma")
        assert cluster.locate(probe) == "gamma"
        assert "post_arrival:gamma" not in probe.get_history()  # born there

    def test_state_survives_round_trip(self, cluster):
        probe = Probe(_core=cluster["alpha"], _at="beta")
        probe.note("first")
        Carrier.move(probe, "alpha")
        Carrier.move(probe, "beta")
        assert "first" in probe.get_history()


class TestNaming:
    def test_locate_tracks_movement(self, cluster):
        probe = Probe(_core=cluster["alpha"])
        assert cluster.locate(probe) == "alpha"
        Carrier.move(probe, "beta")
        assert cluster.locate(probe) == "beta"

    def test_stale_tracker_chases_forwarding_pointers(self, cluster):
        """A reference held at gamma keeps working as the target roams."""
        probe = Probe(_core=cluster["alpha"])
        holder = Holder(_core=cluster["alpha"], _at="gamma")
        holder.set_ref(probe)
        Carrier.move(probe, "beta")
        holder.get_ref().note("chased")
        assert "chased" in probe.get_history()
        assert cluster.locate(probe) == "beta"


class TestAccounting:
    def test_traffic_is_metered_on_both_backends(self, cluster):
        probe = Probe(_core=cluster["alpha"], _at="beta")
        cluster.reset_stats()
        probe.note("metered")
        stats = cluster.stats
        assert stats.messages >= 2  # at least request + reply
        assert stats.bytes > 0

    def test_tracing_is_identical_surface(self, cluster):
        probe = Probe(_core=cluster["alpha"], _at="beta")
        probe.note("traced")
        trace = list(cluster.transport.trace)
        assert any("alpha" in line and "beta" in line for line in trace)
