"""Integration: distributed traces stitch one logical operation together.

The tentpole property of the observability layer: a single logical
operation — a stub invocation crossing a tracker chain, a threshold
watch firing a scripted relocation, a move riding through an outage on
retries — yields ONE connected span tree, no matter how many Cores the
work visits.  These tests drive real multi-Core scenarios and assert on
the assembled trees and the exported documents.
"""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.workload import Client, Counter, Echo, Server
from repro.core.events import MOVE_COMPLETED
from repro.errors import CoreUnreachableError
from repro.net.retry import RetryPolicy
from repro.script.interpreter import ScriptEngine


def span_names(trace):
    return [span.name for span in trace.spans]


def the_trace_containing(cluster, prefix):
    """The single trace holding a span whose name starts with ``prefix``."""
    matching = [
        trace
        for trace in cluster.traces().values()
        if any(name.startswith(prefix) for name in span_names(trace))
    ]
    assert len(matching) == 1, f"expected one trace with {prefix!r}, got {len(matching)}"
    return matching[0]


class TestChainedInvocationTrace:
    def test_two_hop_chain_is_one_connected_trace(self):
        cluster = Cluster(["alpha", "beta", "gamma"], tracing=True)
        echo = Echo("x", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        cluster.move(echo, "gamma")  # the alpha stub still points at beta
        cluster.clear_spans()
        assert echo.echo("hi") == "hi"
        trace = the_trace_containing(cluster, "invoke:echo")
        assert trace.is_connected()
        assert trace.cores() == ["alpha", "beta", "gamma"]
        names = span_names(trace)
        assert names.count("rpc:invoke") == 2  # alpha->beta, beta->gamma
        assert names.count("recv:invoke") == 2
        assert "exec:echo" in names
        # The exec span runs where the complet actually lives.
        exec_span = next(s for s in trace.spans if s.name == "exec:echo")
        assert exec_span.core == "gamma"
        # Causal depth: the chain nests, it does not fan out.
        depths = {span.span_id: depth for depth, span in trace.walk()}
        assert depths[exec_span.span_id] >= 3

    def test_colocated_invocation_stays_on_one_core(self, make_cluster):
        cluster = make_cluster(["alpha", "beta"], tracing=True)
        echo = Echo("x", _core=cluster["alpha"])
        cluster.clear_spans()
        echo.ping()
        trace = the_trace_containing(cluster, "invoke:ping")
        assert trace.is_connected()
        assert trace.cores() == ["alpha"]

    def test_tracing_off_records_nothing(self, make_cluster):
        cluster = make_cluster(["alpha", "beta"])  # default: off
        echo = Echo("x", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        echo.ping()
        assert cluster.spans() == []
        assert cluster.traces() == {}


class TestMoveTrace:
    def test_move_through_stale_chain_is_one_trace(self):
        cluster = Cluster(["alpha", "beta", "gamma"], tracing=True)
        echo = Echo("x", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        cluster.move(echo, "gamma")
        cluster.clear_spans()
        cluster.move(echo, "alpha")  # resolved through the stale chain
        trace = the_trace_containing(cluster, "move")
        assert trace.is_connected()
        assert trace.cores() == ["alpha", "beta", "gamma"]
        names = span_names(trace)
        assert "rpc:move_request" in names
        assert "move:twophase" in names
        assert "event:moveCompleted" in names

    def test_move_completed_event_fires(self, cluster):
        seen = []
        cluster["beta"].events.subscribe(MOVE_COMPLETED, seen.append)
        echo = Echo("x", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        cluster.move(echo, "alpha")
        assert len(seen) == 1
        assert seen[0].data["destination"] == "alpha"


class TestWatchScriptMoveTrace:
    """The headline scenario: watch fire -> script rule -> group move."""

    @pytest.fixture
    def fired_rig(self):
        cluster = Cluster(["alpha", "beta", "gamma"], tracing=True)
        engine = ScriptEngine(cluster, home="gamma")
        server = Server(_core=cluster["beta"], _at="beta")
        client = Client(server, _core=cluster["alpha"])
        engine._globals.update({"c": client, "s": server})
        engine.run(
            "on methodInvokeRate(3) from $c to $s do move $c to coreOf $s end"
        )
        cluster.clear_spans()
        for _ in range(4):
            client.run(15)
            cluster.advance(1.0)
        assert cluster.locate(client) == "beta"
        return cluster

    def test_whole_causal_chain_is_one_connected_trace(self, fired_rig):
        cluster = fired_rig
        # Of the traces rooted at a watch fire, (at least) one carries
        # the move; it must be a single connected tree.
        move_traces = [
            trace
            for trace in cluster.traces().values()
            if any(n.startswith("watch:") for n in span_names(trace))
            and "move:twophase" in span_names(trace)
        ]
        assert len(move_traces) == 1
        trace = move_traces[0]
        assert trace.is_connected()
        assert trace.cores() == ["alpha", "beta", "gamma"]
        names = span_names(trace)
        # Every stage of the §4 pipeline shows up under one root:
        assert any(n.startswith("watch:") for n in names)    # threshold fire
        assert any(n.startswith("script:") for n in names)   # rule execution
        assert "rpc:move_complet" in names                   # the wire move
        assert "event:moveCompleted" in names                # completion event
        root = trace.roots[0]
        assert root.category == "watch"
        assert root.attributes["threshold"] == 3.0

    def test_watch_fire_starts_a_fresh_trace(self, fired_rig):
        cluster = fired_rig
        for trace in cluster.traces().values():
            for _, span in trace.walk():
                if span.category == "watch":
                    assert span.parent_id is None
                    assert span.trace_id == span.span_id


class TestRetryAndAbortTraces:
    def test_retried_move_span_carries_attempt_number(self):
        cluster = Cluster(
            ["a", "b"],
            tracing=True,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5),
        )
        inject = FailureInjector(cluster)
        counter = Counter(0, _core=cluster["a"])
        cluster.set_link("a", "b", up=False)
        inject.restore_link_at(0.4, "a", "b")
        cluster.clear_spans()
        cluster.move(counter, "b")
        assert cluster.locate(counter) == "b"
        trace = the_trace_containing(cluster, "move")
        assert trace.is_connected()
        rpc_span = next(s for s in trace.spans if s.name == "rpc:move_complet")
        assert rpc_span.attributes["attempt"] == 1
        assert "CoreUnreachableError" in rpc_span.attributes["retry_error"]
        counters = cluster.metrics_snapshot()["cluster"]["counters"]
        assert counters["rpc.retries{kind=move_complet}"] == 1.0

    def test_aborted_move_trace_records_the_error(self):
        cluster = Cluster(
            ["a", "b"],
            tracing=True,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.25),
        )
        counter = Counter(7, _core=cluster["a"])
        cluster.set_link("a", "b", up=False)  # and it stays down
        cluster.clear_spans()
        with pytest.raises(CoreUnreachableError):
            cluster.move(counter, "b")
        trace = the_trace_containing(cluster, "move")
        errored = [s for s in trace.spans if s.error]
        assert errored, "the failed move must mark its spans"
        assert any("CoreUnreachableError" in s.error for s in errored)
        counters = cluster.metrics_snapshot()["cluster"]["counters"]
        assert counters["movement.moves_aborted"] == 1.0


class TestExports:
    def test_chrome_export_round_trips(self):
        cluster = Cluster(["alpha", "beta"], tracing=True)
        echo = Echo("x", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        echo.ping()
        document = json.loads(cluster.chrome_trace_json(indent=2))
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(cluster.spans())
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {"Core alpha", "Core beta"}
        # Every event of one trace shares the trace id in args.
        trace_ids = {e["args"]["trace_id"] for e in events}
        assert trace_ids == {t for t in cluster.traces()}

    def test_cluster_metrics_aggregate_across_cores(self):
        cluster = Cluster(["alpha", "beta"], tracing=True)
        echo = Echo("x", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        echo.ping()
        snapshot = cluster.metrics_snapshot()
        assert set(snapshot) == {"cores", "cluster"}
        merged = snapshot["cluster"]["counters"]
        assert merged["invocation.executed"] == 1.0
        assert merged["movement.moves_sent"] == 1.0
        assert merged["movement.moves_received"] == 1.0
        per_core = {s["core"] for s in snapshot["cores"]}
        assert per_core == {"alpha", "beta"}
