"""Integration: composite relocation scenarios mixing all reference types."""

import pytest

from repro.complet.relocators import Duplicate, Link, Pull, Stamp
from repro.core.core import Core
from repro.net.messages import MessageKind
from repro.cluster.workload import (
    Counter,
    DataSource,
    Desktop,
    Echo,
    Printer,
    Worker,
)
from tests.anchors import Holder, Pair


def _anchor(cluster, stub):
    return cluster.core(cluster.locate(stub)).repository.get(stub._fargo_target_id)


class TestMixedGroup:
    """One mover with a pull, a duplicate, a stamp, and a link reference."""

    @pytest.fixture
    def rig(self, cluster3):
        cluster = cluster3
        Printer("beta-printer", _core=cluster["beta"], _at="beta")
        pulled = Counter(1, _core=cluster["alpha"])
        copied = DataSource(500, _core=cluster["alpha"])
        linked = Echo("stay", _core=cluster["alpha"])
        stamped = Printer("alpha-printer", _core=cluster["alpha"])
        mover = Holder(None, _core=cluster["alpha"])
        anchor = _anchor(cluster, mover)
        anchor.pulled = pulled
        anchor.copied = copied
        anchor.linked = linked
        anchor.stamped = stamped
        Core.get_meta_ref(anchor.pulled).set_relocator(Pull())
        Core.get_meta_ref(anchor.copied).set_relocator(Duplicate())
        Core.get_meta_ref(anchor.stamped).set_relocator(Stamp())
        return cluster, mover, pulled, copied, linked, stamped

    def test_every_semantics_applies(self, rig):
        cluster, mover, pulled, copied, linked, stamped = rig
        cluster.move(mover, "beta")
        assert cluster.locate(mover) == "beta"
        assert cluster.locate(pulled) == "beta"      # pull: moved along
        assert cluster.locate(copied) == "alpha"     # duplicate: original stays
        assert cluster.locate(linked) == "alpha"     # link: untouched
        assert cluster.locate(stamped) == "alpha"    # stamp: original stays
        anchor = _anchor(cluster, mover)
        assert anchor.stamped.location() == "beta-printer"  # reconnected

    def test_single_stream_for_whole_group(self, rig):
        cluster, mover, *_rest = rig
        before = cluster.stats.by_kind[MessageKind.MOVE_COMPLET]
        cluster.move(mover, "beta")
        assert cluster.stats.by_kind[MessageKind.MOVE_COMPLET] - before == 2

    def test_group_remains_movable(self, rig):
        cluster, mover, pulled, *_rest = rig
        cluster.move(mover, "beta")
        Printer("gamma-printer", _core=cluster["gamma"], _at="gamma")
        cluster.move(mover, "gamma")
        assert cluster.locate(pulled) == "gamma"
        anchor = _anchor(cluster, mover)
        assert anchor.stamped.location() == "gamma-printer"


class TestRetypeMidLifecycle:
    def test_pull_then_link_then_pull(self, cluster3):
        source = DataSource(100, _core=cluster3["alpha"])
        worker = Worker(source, _core=cluster3["alpha"])
        anchor = _anchor(cluster3, worker)
        Core.get_meta_ref(anchor.source).set_relocator(Pull())
        cluster3.move(worker, "beta")
        assert cluster3.locate(source) == "beta"

        anchor = _anchor(cluster3, worker)
        Core.get_meta_ref(anchor.source).set_relocator(Link())
        cluster3.move(worker, "gamma")
        assert cluster3.locate(source) == "beta"  # left behind this time

        anchor = _anchor(cluster3, worker)
        Core.get_meta_ref(anchor.source).set_relocator(Pull())
        cluster3.move(worker, "alpha")
        assert cluster3.locate(source) == "alpha"  # remote pull followed

    def test_relocator_survives_migration(self, cluster3):
        """The reference keeps its type as its holder migrates."""
        source = DataSource(100, _core=cluster3["alpha"])
        worker = Worker(source, _core=cluster3["alpha"])
        anchor = _anchor(cluster3, worker)
        Core.get_meta_ref(anchor.source).set_relocator(Pull())
        cluster3.move(worker, "beta")
        anchor = _anchor(cluster3, worker)
        assert Core.get_meta_ref(anchor.source).type_name == "pull"


class TestDeepGroups:
    def test_pull_chain_of_ten(self, cluster):
        chain = [Counter(0, _core=cluster["alpha"])]
        for _ in range(9):
            holder = Holder(chain[-1], _core=cluster["alpha"])
            anchor = _anchor(cluster, holder)
            Core.get_meta_ref(anchor.ref).set_relocator(Pull())
            chain.append(holder)
        before = cluster.stats.by_kind[MessageKind.MOVE_COMPLET]
        cluster.move(chain[-1], "beta")
        assert cluster.stats.by_kind[MessageKind.MOVE_COMPLET] - before == 2
        for stub in chain:
            assert cluster.locate(stub) == "beta"

    def test_diamond_pull_topology(self, cluster):
        """A pulls B and C; both pull D: D moves once, stays shared."""
        shared = Counter(0, _core=cluster["alpha"])
        left = Holder(shared, _core=cluster["alpha"])
        right = Holder(shared, _core=cluster["alpha"])
        top = Pair(left, right, _core=cluster["alpha"])
        for holder in (left, right):
            anchor = _anchor(cluster, holder)
            Core.get_meta_ref(anchor.ref).set_relocator(Pull())
        top_anchor = _anchor(cluster, top)
        Core.get_meta_ref(top_anchor.left).set_relocator(Pull())
        Core.get_meta_ref(top_anchor.right).set_relocator(Pull())
        cluster.move(top, "beta")
        assert cluster.complets_at("alpha") == []
        # The shared target arrived once:
        counters = [c for c in cluster.complets_at("beta") if "Counter" in c]
        assert len(counters) == 1
        # Both holders see the same counter:
        left_anchor = _anchor(cluster, left)
        right_anchor = _anchor(cluster, right)
        left_anchor.ref.increment()
        assert right_anchor.ref.read() == 1
