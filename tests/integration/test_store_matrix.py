"""Store offloading across transport backends (sim and real TCP).

The proxy protocol must behave identically whether envelopes travel the
simulated network or real sockets: large movement payloads and bulky
invocation arguments ship as ~100 B proxies, resolve to identical state
at the destination, and balance their store references afterwards.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import DataSource, Echo

PAYLOAD = 256 * 1024  # four times the default offload threshold

BACKENDS = [
    pytest.param("sim", id="sim"),
    pytest.param("tcp", id="tcp", marks=pytest.mark.tcp),
]


@pytest.fixture(params=BACKENDS)
def cluster(request):
    cluster = Cluster(["alpha", "beta", "gamma"], transport=request.param, store="memory")
    yield cluster
    cluster.close()


class TestHeavyMove:
    def test_move_ships_proxy_not_payload(self, cluster):
        source = DataSource(PAYLOAD, _core=cluster["alpha"])
        before_checksum = source.checksum()
        base = cluster.stats.bytes
        cluster.move(source, "beta")
        moved_bytes = cluster.stats.bytes - base
        # ISSUE acceptance: at least 80% fewer transport bytes than the
        # payload the move would otherwise carry inline.
        assert moved_bytes < PAYLOAD / 5
        assert source.checksum() == before_checksum

    def test_store_is_drained_after_move(self, cluster):
        source = DataSource(PAYLOAD, _core=cluster["alpha"])
        cluster.move(source, "beta")
        snapshot = cluster.store_snapshot()
        assert snapshot["enabled"]
        assert snapshot["store"]["entries"] == []  # put/evict balanced

    def test_client_counters_visible_via_admin(self, cluster):
        source = DataSource(PAYLOAD, _core=cluster["alpha"])
        cluster.move(source, "beta")
        sender = cluster.admin("alpha").store()
        receiver = cluster.admin("beta").store()
        assert sender["enabled"] and receiver["enabled"]
        assert sender["client"]["offloads"] >= 1
        assert receiver["client"]["resolves"] >= 1


class TestHeavyInvocation:
    def test_bulk_argument_ships_as_proxy(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        payload = "z" * PAYLOAD
        base = cluster.stats.bytes
        assert echo.echo(payload) == payload
        invoke_bytes = cluster.stats.bytes - base
        # Request argument and reply result both offload.
        assert invoke_bytes < 2 * PAYLOAD / 5

    def test_small_arguments_stay_inline(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        before = cluster.store_snapshot()["store"]["stats"]["puts"]
        assert echo.echo("tiny") == "tiny"
        after = cluster.store_snapshot()["store"]["stats"]["puts"]
        assert after == before


class TestFileBackend:
    @pytest.fixture(params=BACKENDS)
    def file_cluster(self, request, tmp_path):
        from repro.store import FileStore

        cluster = Cluster(
            ["alpha", "beta"],
            transport=request.param,
            store=FileStore(tmp_path / "blobs"),
        )
        yield cluster
        cluster.close()

    def test_move_through_file_store(self, file_cluster):
        source = DataSource(PAYLOAD, _core=file_cluster["alpha"])
        checksum = source.checksum()
        base = file_cluster.stats.bytes
        file_cluster.move(source, "beta")
        assert file_cluster.stats.bytes - base < PAYLOAD / 5
        assert source.checksum() == checksum
