"""Integration: a Core crashes; the cluster detects, recovers, reconciles.

The deterministic end-to-end scenario behind ``examples/core_failover.py``:
three Cores, protected complets on one of them, a hard crash at a fixed
virtual time — and afterwards every protected complet answers on a
survivor, through old references, with a single host per identity.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.workload import Counter, DataSource
from repro.errors import FarGoError
from repro.recovery import CheckpointPolicy, DetectorConfig
from repro.script.interpreter import ScriptEngine

DETECTOR = dict(interval=0.5, suspect_after=1.5, fail_after=3.0)


def _rig(*, auto_recover=True):
    cluster = Cluster(["alpha", "beta", "gamma"])
    cluster.enable_recovery(
        detector=DetectorConfig(**DETECTOR), auto_recover=auto_recover
    )
    return cluster, FailureInjector(cluster)


class TestCrashSurvival:
    def test_protected_complets_survive_a_crash(self):
        cluster, inject = _rig()
        counters = [
            Counter(i * 10, _core=cluster["alpha"], _at="gamma") for i in range(3)
        ]
        for counter in counters:
            cluster.checkpoints.protect(
                counter, CheckpointPolicy(interval=1.0, on_arrival=True)
            )
            counter.increment(by=2)
        inject.crash_core_at(2.0, "gamma")
        cluster.advance(8.0)

        # Every complet lives on exactly one reachable survivor.  (The
        # crashed Core's frozen memory may still hold a stale copy —
        # fail-stop means nobody can observe it until revival drops it.)
        for i, counter in enumerate(counters):
            hosts = [
                core.name
                for core in cluster.running_cores()
                if cluster.network.is_up(core.name)
                and core.repository.hosts(counter._fargo_target_id)
            ]
            assert len(hosts) == 1 and hosts[0] != "gamma"
            # ...and answers through a reference seated before the crash.
            assert cluster.stub_at("alpha", counter).read() == i * 10 + 2

    def test_unprotected_complets_stay_lost(self):
        """Recovery is opt-in: no checkpoint, no revival."""
        cluster, inject = _rig()
        saved = Counter(40, _core=cluster["alpha"], _at="gamma")
        cluster.checkpoints.protect(saved, CheckpointPolicy(interval=1.0))
        lost = Counter(7, _core=cluster["alpha"], _at="gamma")
        inject.crash_core_at(2.0, "gamma")
        cluster.advance(8.0)
        assert cluster.stub_at("beta", saved).read() == 40
        with pytest.raises(FarGoError):
            cluster.stub_at("beta", lost).read()

    def test_crash_then_revival_reconciles(self):
        """The crashed Core comes back with a stale copy; it is dropped
        and the revived Core's references forward to the winner."""
        cluster, inject = _rig()
        counter = Counter(40, _core=cluster["alpha"], _at="gamma")
        cluster.checkpoints.protect(counter, CheckpointPolicy(interval=1.0))
        counter.increment(by=2)
        cluster.advance(1.5)  # interval pass captures 42
        inject.crash_core_at(2.0, "gamma")
        inject.revive_core_at(10.0, "gamma")
        cluster.advance(14.0)
        hosts = [
            core.name
            for core in cluster.running_cores()
            if core.repository.hosts(counter._fargo_target_id)
        ]
        assert len(hosts) == 1 and hosts[0] != "gamma"
        # All three Cores resolve the identity to the same revival.
        values = {
            cluster.stub_at(name, counter).read()
            for name in ("alpha", "beta", "gamma")
        }
        assert values == {42}


class TestScriptedFailover:
    SCRIPT = "on coreFailed firedby $c do call failover() end"

    def test_layout_script_drives_recovery(self):
        cluster, inject = _rig(auto_recover=False)
        engine = ScriptEngine(cluster, home="alpha")
        engine.run(self.SCRIPT)
        counter = Counter(40, _core=cluster["alpha"], _at="gamma")
        cluster.checkpoints.protect(
            counter, CheckpointPolicy(interval=1.0, on_arrival=True)
        )
        counter.increment(by=2)
        inject.crash_core_at(2.0, "gamma")
        cluster.advance(8.0)
        assert any("failover of gamma" in line for line in engine.log)
        report = cluster.recovery.reports[0]
        assert report.failed == "gamma" and report.restored
        assert cluster.stub_at("beta", counter).read() == 42

    def test_script_failover_is_idempotent(self):
        """Rules on several survivors fire; one recovery pass runs."""
        cluster, inject = _rig(auto_recover=False)
        engines = [
            ScriptEngine(cluster, home=name) for name in ("alpha", "beta")
        ]
        for engine in engines:
            engine.run(self.SCRIPT)
        counter = Counter(40, _core=cluster["alpha"], _at="gamma")
        cluster.checkpoints.protect(counter, CheckpointPolicy(interval=1.0))
        counter.increment(by=2)
        cluster.advance(1.5)
        inject.crash_core_at(2.0, "gamma")
        cluster.advance(8.0)
        assert len(cluster.recovery.reports) == 1
        assert sum(
            "already handled" in line
            for engine in engines
            for line in engine.log
        ) >= 1

    def test_script_passes_static_analysis(self):
        from repro.analysis import check_script

        diagnostics = check_script(self.SCRIPT)
        assert [d for d in diagnostics if d.severity == "error"] == []


class TestPullGroupRecovery:
    def test_group_restored_together_on_one_survivor(self):
        from repro.complet.relocators import Pull
        from repro.core.core import Core
        from tests.anchors import Holder

        cluster, inject = _rig()
        source = DataSource(64, _core=cluster["alpha"], _at="gamma")
        head = Holder(source, _core=cluster["alpha"], _at="gamma")
        anchor = cluster["gamma"].repository.get(head._fargo_target_id)
        Core.get_meta_ref(anchor.ref).set_relocator(Pull())
        cluster.checkpoints.protect(head, CheckpointPolicy(interval=1.0))
        inject.crash_core_at(2.0, "gamma")
        cluster.advance(8.0)
        destination = cluster.recovery.reports[0].destination
        revived = cluster.stub_at(destination, head)
        # The revived head reaches its pulled member on the same Core.
        member = revived.get_ref()
        assert member.checksum() == DataSource(64, _core=cluster["alpha"]).checksum()
        assert cluster.locate(member) == destination
