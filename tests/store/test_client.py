"""The per-Core StoreClient: threshold, resolve cache, release balance."""

from __future__ import annotations

import pytest

from repro.errors import StoreMissError
from repro.metrics.registry import MetricsRegistry
from repro.store import InMemoryStore, StoreClient, StoreProxy


@pytest.fixture
def backend():
    return InMemoryStore()


@pytest.fixture
def client(backend):
    return StoreClient(backend, threshold=1_024, cache_capacity=2)


class TestOffload:
    def test_below_threshold_passes_bytes_through(self, client, backend):
        data = b"small"
        assert client.offload(data) is data
        assert backend.stats.puts == 0

    def test_at_threshold_returns_proxy(self, client, backend):
        data = b"p" * 1_024
        proxy = client.offload(data)
        assert isinstance(proxy, StoreProxy)
        assert proxy.key.size == len(data)
        assert proxy.locator == backend.locator()
        assert backend.stats.puts == 1

    def test_offload_counts_bytes_saved(self, backend):
        metrics = MetricsRegistry()
        client = StoreClient(backend, threshold=1_024, metrics=metrics)
        client.offload(b"x" * 10_000)
        assert metrics.counter_value("store.offloads") == 1
        # Saved bytes discount the proxy's own wire footprint.
        assert 0 < metrics.counter_value("store.bytes_saved") <= 10_000


class TestResolve:
    def test_inline_bytes_pass_through(self, client):
        assert client.resolve(b"inline") == b"inline"

    def test_proxy_resolves_to_original_bytes(self, client):
        data = b"r" * 5_000
        proxy = client.offload(data)
        assert client.resolve(proxy) == data
        snap = client.stats_snapshot()
        assert snap["store_hits"] == 1
        assert snap["cache_hits"] == 0

    def test_repeat_resolve_hits_cache(self, client):
        proxy = client.offload(b"c" * 5_000)
        client.resolve(proxy)
        client.resolve(proxy)
        snap = client.stats_snapshot()
        assert snap["store_hits"] == 1
        assert snap["cache_hits"] == 1

    def test_release_evicts_store_entry(self, client, backend):
        proxy = client.offload(b"e" * 5_000)
        client.resolve(proxy, release=True)
        assert not backend.contains(proxy.key)
        assert backend.stats.evictions == 1

    def test_fresh_client_misses_after_release(self, backend):
        sender = StoreClient(backend, threshold=1_024)
        proxy = sender.offload(b"m" * 5_000)
        sender.resolve(proxy, release=True)
        receiver = StoreClient(backend, threshold=1_024)
        with pytest.raises(StoreMissError):
            receiver.resolve(proxy)
        assert receiver.stats_snapshot()["misses"] == 1

    def test_cache_is_lru_bounded(self, client):
        proxies = [client.offload(bytes([i]) * 2_000) for i in range(3)]
        for proxy in proxies:
            client.resolve(proxy)
        assert client.cache_len() == 2
        # The oldest entry was evicted: resolving it is a store hit again.
        client.resolve(proxies[0])
        snap = client.stats_snapshot()
        assert snap["store_hits"] == 4
        assert snap["cache_hits"] == 0

    def test_resolve_via_foreign_locator(self, backend):
        # A proxy made elsewhere self-resolves through store_for_locator.
        sender = StoreClient(backend, threshold=1_024)
        proxy = sender.offload(b"f" * 4_096)
        other_client = StoreClient(InMemoryStore(), threshold=1_024)
        assert other_client.resolve(proxy) == b"f" * 4_096

    def test_release_via_foreign_locator(self, backend):
        sender = StoreClient(backend, threshold=1_024)
        proxy = sender.offload(b"g" * 4_096)
        other_client = StoreClient(InMemoryStore(), threshold=1_024)
        other_client.resolve(proxy, release=True)
        assert not backend.contains(proxy.key)


class TestSnapshot:
    def test_stats_snapshot_keys(self, client):
        snap = client.stats_snapshot()
        assert set(snap) == {
            "threshold",
            "offloads",
            "bytes_saved",
            "resolves",
            "cache_hits",
            "store_hits",
            "misses",
            "cache_entries",
        }
        assert snap["threshold"] == 1_024
