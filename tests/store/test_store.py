"""Content-keyed object-store backends: keys, refcounts, locators."""

from __future__ import annotations

import gc
import hashlib

import pytest

from repro.errors import StoreError, StoreMissError
from repro.store import FileStore, InMemoryStore, StoreKey
from repro.store.store import store_for_locator


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        backend = InMemoryStore()
    else:
        backend = FileStore(tmp_path / "blobs")
    yield backend
    backend.close()


class TestStoreKey:
    def test_key_is_sha256_plus_length(self):
        data = b"some payload bytes"
        key = StoreKey.for_data(data)
        assert key.digest == hashlib.sha256(data).hexdigest()
        assert key.size == len(data)

    def test_same_content_same_key(self):
        assert StoreKey.for_data(b"x" * 100) == StoreKey.for_data(b"x" * 100)
        assert StoreKey.for_data(b"x" * 100) != StoreKey.for_data(b"y" * 100)

    def test_short_form(self):
        key = StoreKey.for_data(b"abc")
        assert key.short() == key.digest[:10]


class TestBackends:
    def test_put_get_roundtrip(self, store):
        data = b"payload" * 1_000
        key = store.put(data)
        assert store.get(key) == data
        assert store.contains(key)
        assert store.stats.puts == 1
        assert store.stats.gets == 1
        assert store.stats.bytes_put == len(data)
        assert store.stats.bytes_served == len(data)

    def test_get_missing_raises_and_counts(self, store):
        ghost = StoreKey.for_data(b"never stored")
        with pytest.raises(StoreMissError):
            store.get(ghost)
        assert store.stats.misses == 1
        assert not store.contains(ghost)

    def test_duplicate_put_dedups_to_one_entry(self, store):
        data = b"d" * 4_096
        k1 = store.put(data)
        k2 = store.put(data)
        assert k1 == k2
        assert store.stats.puts == 1
        assert store.stats.dedup_puts == 1
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0].refcount == 2

    def test_evict_balances_refcount(self, store):
        data = b"e" * 2_048
        key = store.put(data)
        store.put(data)
        assert store.evict(key) is False  # one reference remains
        assert store.contains(key)
        assert store.evict(key) is True  # last reference removes it
        assert not store.contains(key)
        assert store.stats.evictions == 1
        with pytest.raises(StoreMissError):
            store.get(key)

    def test_evict_of_absent_entry_is_noop(self, store):
        assert store.evict(StoreKey.for_data(b"nothing")) is False
        assert store.stats.evictions == 0

    def test_entries_report_hits(self, store):
        key = store.put(b"h" * 512)
        store.get(key)
        store.get(key)
        [info] = store.entries()
        assert info.key == key
        assert info.hits == 2
        assert info.refcount == 1

    def test_len_counts_distinct_entries(self, store):
        store.put(b"a" * 256)
        store.put(b"b" * 256)
        store.put(b"a" * 256)  # dedup
        assert len(store) == 2

    def test_snapshot_shape(self, store):
        key = store.put(b"s" * 128)
        snap = store.snapshot()
        assert snap["backend"] in ("memory", "file")
        assert snap["stats"]["puts"] == 1
        [entry] = snap["entries"]
        assert entry["digest"] == key.digest
        assert entry["size"] == 128
        assert entry["refcount"] == 1

    def test_locator_resolves_back_to_served_bytes(self, store):
        data = b"locate me" * 300
        key = store.put(data)
        resolved = store_for_locator(store.locator())
        assert resolved.get(key) == data


class TestFileStoreSharing:
    def test_second_handle_on_same_directory_sees_entries(self, tmp_path):
        writer = FileStore(tmp_path / "shared")
        data = b"cross-process blob" * 100
        key = writer.put(data)
        reader = FileStore(tmp_path / "shared")
        assert reader.get(key) == data
        assert reader.evict(key) is True
        assert not writer.contains(key)

    def test_refcount_survives_reopen(self, tmp_path):
        writer = FileStore(tmp_path / "shared")
        key = writer.put(b"r" * 64)
        writer.put(b"r" * 64)
        reader = FileStore(tmp_path / "shared")
        assert reader.evict(key) is False
        assert reader.evict(key) is True


class TestLocatorResolution:
    def test_memory_locator_resolves_to_same_instance(self):
        backend = InMemoryStore()
        assert store_for_locator(backend.locator()) is backend

    def test_memory_locator_of_dead_store_misses(self):
        backend = InMemoryStore()
        locator = backend.locator()
        del backend
        gc.collect()
        with pytest.raises(StoreMissError):
            store_for_locator(locator)

    def test_unknown_backend_rejected(self):
        with pytest.raises(StoreError):
            store_for_locator(("carrier-pigeon", "coop-7"))
