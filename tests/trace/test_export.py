"""Unit tests for trace assembly and the JSON / Chrome exporters."""

import json

import pytest

from repro.sim.clock import VirtualClock
from repro.trace.export import (
    assemble_traces,
    chrome_trace,
    chrome_trace_json,
    spans_to_json,
    traces_to_json,
)
from repro.trace.tracer import SpanContext, Tracer


@pytest.fixture
def spans():
    """A two-Core trace plus an unrelated single-span trace."""
    clock = VirtualClock()
    alpha = Tracer("alpha", clock, enabled=True)
    beta = Tracer("beta", clock, enabled=True)
    with alpha.span("invoke:echo") as root:
        clock.tick(0.01)
        with beta.span("recv:invoke", parent=root.context):
            clock.tick(0.01)
        clock.tick(0.01)
    clock.tick(0.1)
    with beta.span("lone"):
        pass
    return alpha.spans() + beta.spans()


class TestAssembly:
    def test_groups_by_trace_id(self, spans):
        traces = assemble_traces(spans)
        assert len(traces) == 2
        sizes = sorted(len(t.spans) for t in traces.values())
        assert sizes == [1, 2]

    def test_cross_core_parent_links_resolve(self, spans):
        traces = assemble_traces(spans)
        big = next(t for t in traces.values() if len(t.spans) == 2)
        assert big.is_connected()
        walk = list(big.walk())
        assert [depth for depth, _ in walk] == [0, 1]
        assert walk[0][1].core == "alpha"
        assert walk[1][1].core == "beta"
        assert big.cores() == ["alpha", "beta"]

    def test_unrecorded_parent_becomes_root(self):
        clock = VirtualClock()
        tracer = Tracer("gamma", clock, enabled=True)
        orphan_parent = SpanContext("lost.1", "lost.2")
        with tracer.span("recv", parent=orphan_parent):
            pass
        traces = assemble_traces(tracer.spans())
        trace = traces["lost.1"]
        assert len(trace.roots) == 1
        assert trace.is_connected()

    def test_bounds_cover_all_members(self, spans):
        traces = assemble_traces(spans)
        big = next(t for t in traces.values() if len(t.spans) == 2)
        assert big.start == 0.0
        assert big.end == pytest.approx(0.03)
        assert big.duration == pytest.approx(0.03)


class TestJsonExports:
    def test_spans_to_json_is_lossless(self, spans):
        decoded = json.loads(spans_to_json(spans))
        assert len(decoded) == len(spans)
        assert {d["span_id"] for d in decoded} == {s.span_id for s in spans}

    def test_traces_to_json_sorted_by_start(self, spans):
        decoded = json.loads(traces_to_json(spans, indent=2))
        assert [len(t["spans"]) for t in decoded] == [2, 1]
        assert decoded[0]["cores"] == ["alpha", "beta"]


class TestChromeExport:
    def test_round_trips_through_json_loads(self, spans):
        document = json.loads(chrome_trace_json(spans, indent=2))
        assert document["displayTimeUnit"] == "ms"
        assert isinstance(document["traceEvents"], list)

    def test_one_pid_per_core_with_metadata(self, spans):
        document = chrome_trace(spans)
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {"Core alpha", "Core beta"}
        assert len({e["pid"] for e in meta}) == 2

    def test_complete_events_in_microseconds(self, spans):
        document = chrome_trace(spans)
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(spans)
        root = next(e for e in events if e["name"] == "invoke:echo")
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(0.03 * 1e6)
        assert root["args"]["parent_id"] is None

    def test_non_json_attributes_fall_back_to_repr(self):
        clock = VirtualClock()
        tracer = Tracer("alpha", clock, enabled=True)
        with tracer.span("op", payload=object()):
            pass
        json.loads(chrome_trace_json(tracer.spans()))  # must not raise
