"""Unit tests for the per-Core tracer: span lifecycle, context, limits."""

import pytest

from repro.net.messages import SPAN_ID_HEADER, TRACE_ID_HEADER
from repro.sim.clock import VirtualClock
from repro.trace.tracer import (
    NO_SPAN,
    SpanContext,
    Tracer,
    context_from_headers,
)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def tracer(clock):
    return Tracer("alpha", clock, enabled=True)


class TestSpanLifecycle:
    def test_span_records_virtual_times(self, tracer, clock):
        with tracer.span("work") as span:
            clock.tick(0.5)
        assert span.start == 0.0
        assert span.end == 0.5
        assert span.duration == 0.5
        assert tracer.spans() == [span]

    def test_span_ids_are_core_qualified_and_unique(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.span_id.startswith("alpha.")
        assert a.span_id != b.span_id

    def test_nesting_builds_parent_links(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id

    def test_sibling_spans_start_fresh_traces(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_root_forces_fresh_trace_under_active_span(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("watch", root=True) as watch:
                pass
        assert watch.trace_id != outer.trace_id
        assert watch.parent_id is None

    def test_exception_marks_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.error is not None and "boom" in span.error

    def test_attributes_flow_into_to_dict(self, tracer):
        with tracer.span("op", category="rpc", dst="beta") as span:
            span.set_attribute("attempt", 2)
        data = span.to_dict()
        assert data["category"] == "rpc"
        assert data["attributes"] == {"dst": "beta", "attempt": 2}

    def test_capacity_bounds_recorded_spans(self, clock):
        tracer = Tracer("alpha", clock, enabled=True, capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_clear_drops_finished_spans(self, tracer):
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.spans() == []


class TestDisabledFastPath:
    def test_disabled_tracer_returns_the_noop_singleton(self, clock):
        tracer = Tracer("alpha", clock, enabled=False)
        handle = tracer.span("anything")
        assert handle is NO_SPAN
        with handle as span:
            span.set_attribute("k", "v")  # must not explode
            span.set_error("nope")
        assert tracer.spans() == []

    def test_toggling_mid_flight_finishes_open_spans(self, tracer):
        with tracer.span("open") as span:
            tracer.enabled = False
        assert span.end is not None
        assert tracer.spans() == [span]


class TestContextPropagation:
    def test_context_headers_empty_outside_spans(self, tracer):
        assert tracer.context_headers() == {}

    def test_context_headers_carry_current_span(self, tracer):
        with tracer.span("op") as span:
            headers = tracer.context_headers()
        assert headers == {
            TRACE_ID_HEADER: span.trace_id,
            SPAN_ID_HEADER: span.span_id,
        }

    def test_context_round_trips_through_headers(self, tracer):
        with tracer.span("op") as span:
            ctx = context_from_headers(tracer.context_headers())
        assert ctx == SpanContext(span.trace_id, span.span_id)

    def test_missing_headers_yield_no_context(self):
        assert context_from_headers({}) is None
        assert context_from_headers({TRACE_ID_HEADER: "t"}) is None

    def test_explicit_parent_adopts_remote_trace(self, tracer):
        remote = SpanContext("beta.7", "beta.9")
        with tracer.span("recv", parent=remote) as span:
            pass
        assert span.trace_id == "beta.7"
        assert span.parent_id == "beta.9"
