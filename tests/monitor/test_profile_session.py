"""Tests for the ProfilingSession handle and the deprecated start/stop shims."""

import pytest

from repro.cluster.workload import Echo
from repro.monitor.profiler import ProfilingSession


class TestSessionHandle:
    def test_context_manager_reads_and_releases(self, cluster):
        core = cluster["alpha"]
        Echo("x", _core=core)
        with core.profile("completLoad", interval=1.0) as session:
            assert isinstance(session, ProfilingSession)
            assert session.active
            cluster.advance(3.0)
            assert session.value == pytest.approx(1.0)
        assert not session.active
        assert core.profiler.active_profiles() == 0

    def test_history_matches_profiler(self, cluster):
        core = cluster["alpha"]
        with core.profile("completLoad", interval=1.0) as session:
            Echo("x", _core=core)
            cluster.advance(3.0)
            samples = session.history()
        assert [raw for _, raw in samples] == [1.0, 1.0, 1.0]

    def test_stop_is_idempotent(self, cluster):
        core = cluster["alpha"]
        session = core.profile("completLoad")
        session.stop()
        session.stop()  # a second stop must not drop someone else's ref
        assert core.profiler.active_profiles() == 0

    def test_two_sessions_share_one_sampler(self, cluster):
        core = cluster["alpha"]
        first = core.profile("completLoad", interval=1.0)
        second = core.profile("completLoad", interval=1.0)
        assert core.profiler.active_profiles() == 1
        first.stop()
        assert core.profiler.active_profiles() == 1  # second still holds it
        second.stop()
        assert core.profiler.active_profiles() == 0

    def test_params_scope_the_session(self, cluster):
        core = cluster["alpha"]
        with core.profile("linkBytes", peer="beta") as session:
            cluster.advance(2.0)
            assert session.value == 0.0
            assert session.params == {"peer": "beta"}

    def test_exception_inside_with_still_releases(self, cluster):
        core = cluster["alpha"]
        with pytest.raises(RuntimeError):
            with core.profile("completLoad"):
                raise RuntimeError("boom")
        assert core.profiler.active_profiles() == 0


class TestDeprecatedShims:
    def test_start_stop_still_work_but_warn(self, cluster):
        core = cluster["alpha"]
        Echo("x", _core=core)
        with pytest.deprecated_call():
            core.profile_start("completLoad", interval=1.0)
        cluster.advance(3.0)
        assert core.profile_get("completLoad") == pytest.approx(1.0)
        with pytest.deprecated_call():
            core.profile_stop("completLoad")
        assert core.profiler.active_profiles() == 0

    def test_shim_and_session_share_refcounts(self, cluster):
        core = cluster["alpha"]
        with pytest.deprecated_call():
            core.profile_start("completLoad", interval=1.0)
        session = core.profile("completLoad", interval=1.0)
        assert core.profiler.active_profiles() == 1
        session.stop()
        assert core.profiler.active_profiles() == 1  # shim client remains
        with pytest.deprecated_call():
            core.profile_stop("completLoad")
        assert core.profiler.active_profiles() == 0
