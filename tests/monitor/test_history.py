"""Tests for profiling history and sparkline rendering."""

import pytest

from repro.errors import ProfilingNotStartedError
from repro.monitor.profiler import HISTORY_CAPACITY
from repro.viewer.render import render_sparkline
from repro.cluster.workload import Echo


class TestHistory:
    def test_samples_recorded_with_times(self, cluster):
        core = cluster["alpha"]
        core.profile_start("completLoad", interval=1.0)
        Echo("x", _core=core)
        cluster.advance(3.0)
        history = core.profiler.history("completLoad")
        assert [t for t, _v in history] == [1.0, 2.0, 3.0]
        assert [v for _t, v in history] == [1.0, 1.0, 1.0]

    def test_history_tracks_changes(self, cluster):
        core = cluster["alpha"]
        core.profile_start("completLoad", interval=1.0)
        cluster.advance(1.0)
        Echo("x", _core=core)
        Echo("y", _core=core)
        cluster.advance(1.0)
        values = [v for _t, v in core.profiler.history("completLoad")]
        assert values == [0.0, 2.0]

    def test_history_is_bounded(self, cluster):
        core = cluster["alpha"]
        core.profile_start("completLoad", interval=1.0)
        cluster.advance(HISTORY_CAPACITY + 50.0)
        history = core.profiler.history("completLoad")
        assert len(history) == HISTORY_CAPACITY
        # The oldest retained sample is the (N-capacity)-th, not the first.
        assert history[0][0] == pytest.approx(51.0)

    def test_history_requires_started_profile(self, cluster):
        with pytest.raises(ProfilingNotStartedError):
            cluster["alpha"].profiler.history("completLoad")

    def test_history_returns_copy(self, cluster):
        core = cluster["alpha"]
        core.profile_start("completLoad", interval=1.0)
        cluster.advance(2.0)
        first = core.profiler.history("completLoad")
        first.clear()
        assert len(core.profiler.history("completLoad")) == 2


class TestSparkline:
    def test_empty(self):
        assert render_sparkline([]) == "(no samples)"

    def test_flat_series(self):
        line = render_sparkline([5.0, 5.0, 5.0])
        assert "[5 .. 5]" in line

    def test_shape_monotone(self):
        line = render_sparkline([0.0, 1.0, 2.0, 3.0])
        body = line.split("  [")[0]
        assert body == "".join(sorted(body))  # rising blocks

    def test_accepts_time_value_pairs(self, cluster):
        core = cluster["alpha"]
        core.profile_start("completLoad", interval=1.0)
        Echo("x", _core=core)
        cluster.advance(5.0)
        line = render_sparkline(core.profiler.history("completLoad"))
        assert "[1 .. 1]" in line

    def test_width_clips_to_recent(self):
        line = render_sparkline(list(range(100)), width=10)
        body = line.split("  [")[0]
        assert len(body) == 10
        assert "[90 .. 99]" in line
