"""Tests for the profiler: instant/continuous interfaces, cache, refcounts (§4.1)."""

import pytest

from repro.errors import ProfilingNotStartedError, UnknownServiceError
from repro.cluster.workload import Echo


class TestInstantInterface:
    def test_instant_evaluates(self, cluster):
        Echo("x", _core=cluster["alpha"])
        assert cluster["alpha"].profile_instant("completLoad") == 1.0

    def test_cache_avoids_reevaluation(self, cluster):
        """§4.1: successive instant requests served without re-evaluation."""
        profiler = cluster["alpha"].profiler
        profiler.instant("completLoad")
        evaluations = profiler.evaluations["completLoad"]
        profiler.instant("completLoad")
        profiler.instant("completLoad")
        assert profiler.evaluations["completLoad"] == evaluations
        assert profiler.cache_hits >= 2

    def test_cache_expires_with_time(self, cluster):
        profiler = cluster["alpha"].profiler
        profiler.instant("completLoad")
        evaluations = profiler.evaluations["completLoad"]
        cluster.advance(2.0)  # beyond the 1 s TTL
        profiler.instant("completLoad")
        assert profiler.evaluations["completLoad"] == evaluations + 1

    def test_cache_bypass(self, cluster):
        profiler = cluster["alpha"].profiler
        profiler.instant("completLoad")
        evaluations = profiler.evaluations["completLoad"]
        profiler.instant("completLoad", use_cache=False)
        assert profiler.evaluations["completLoad"] == evaluations + 1

    def test_cache_stale_value_visible(self, cluster):
        profiler = cluster["alpha"].profiler
        assert profiler.instant("completLoad") == 0.0
        Echo("x", _core=cluster["alpha"])
        assert profiler.instant("completLoad") == 0.0  # cached
        assert profiler.instant("completLoad", use_cache=False) == 1.0

    def test_cache_keyed_by_params(self, cluster):
        profiler = cluster["alpha"].profiler
        profiler.instant("linkBytes", peer="beta")
        evaluations = dict(profiler.evaluations)
        profiler.instant("linkBytes", peer="gamma-other")
        assert profiler.evaluations["linkBytes"] == evaluations["linkBytes"] + 1

    def test_unknown_service(self, cluster):
        with pytest.raises(UnknownServiceError):
            cluster["alpha"].profile_instant("fooService")


class TestContinuousInterface:
    def test_start_get_stop_cycle(self, cluster):
        core = cluster["alpha"]
        core.profile_start("completLoad", interval=1.0)
        Echo("x", _core=core)
        cluster.advance(3.0)
        assert core.profile_get("completLoad") == pytest.approx(1.0)
        core.profile_stop("completLoad")
        assert core.profiler.active_profiles() == 0

    def test_get_without_start(self, cluster):
        with pytest.raises(ProfilingNotStartedError):
            cluster["alpha"].profile_get("completLoad")

    def test_stop_without_start(self, cluster):
        with pytest.raises(ProfilingNotStartedError):
            cluster["alpha"].profile_stop("completLoad")

    def test_sampling_only_when_started(self, cluster):
        """§4.1: the Core monitors only resources of declared interest."""
        profiler = cluster["alpha"].profiler
        cluster.advance(10.0)
        assert profiler.evaluations["completLoad"] == 0
        profiler.start("completLoad", interval=1.0)
        cluster.advance(10.0)
        assert profiler.evaluations["completLoad"] == 10

    def test_refcounted_start_shares_sampler(self, cluster):
        """A second client joins the existing measurement (§4.2 design)."""
        profiler = cluster["alpha"].profiler
        profiler.start("completLoad", interval=1.0)
        profiler.start("completLoad", interval=1.0)
        assert profiler.active_profiles() == 1
        profiler.stop("completLoad")
        assert profiler.active_profiles() == 1  # one client remains
        profiler.stop("completLoad")
        assert profiler.active_profiles() == 0

    def test_stop_cancels_timer(self, cluster):
        profiler = cluster["alpha"].profiler
        profiler.start("completLoad", interval=1.0)
        profiler.stop("completLoad")
        evaluations = profiler.evaluations["completLoad"]
        cluster.advance(10.0)
        assert profiler.evaluations["completLoad"] == evaluations

    def test_exponential_average_smooths(self, cluster):
        core = cluster["alpha"]
        core.profile_start("completLoad", interval=1.0, alpha=0.5)
        cluster.advance(1.0)  # sample: 0 complets
        for _ in range(3):
            Echo("x", _core=core)
        cluster.advance(1.0)  # sample: 3 complets
        value = core.profile_get("completLoad")
        assert 0.0 < value < 3.0  # smoothed, not instantaneous

    def test_custom_service_registration(self, cluster):
        profiler = cluster["alpha"].profiler
        profiler.register_service("answer", lambda core, params: 42.0)
        assert profiler.instant("answer") == 42.0
        profiler.start("answer", interval=1.0)
        cluster.advance(2.0)
        assert profiler.profile_keys()
        assert profiler.get("answer") == 42.0


class TestSampleListeners:
    def test_listener_sees_samples(self, cluster):
        profiler = cluster["alpha"].profiler
        profiler.start("completLoad", interval=1.0)
        samples = []
        profiler.add_sample_listener(
            "completLoad", lambda value, avg: samples.append(value)
        )
        Echo("x", _core=cluster["alpha"])
        cluster.advance(3.0)
        assert samples == [1.0, 1.0, 1.0]

    def test_listener_requires_started_profile(self, cluster):
        with pytest.raises(ProfilingNotStartedError):
            cluster["alpha"].profiler.add_sample_listener(
                "completLoad", lambda v, a: None
            )

    def test_remove_listener(self, cluster):
        profiler = cluster["alpha"].profiler
        profiler.start("completLoad", interval=1.0)
        samples = []
        handle = profiler.add_sample_listener(
            "completLoad", lambda v, a: samples.append(v)
        )
        cluster.advance(1.0)
        profiler.remove_sample_listener(handle)
        cluster.advance(5.0)
        assert len(samples) == 1

    def test_measurement_shared_across_listeners(self, cluster):
        """§4.2: many listeners, one measurement unit."""
        profiler = cluster["alpha"].profiler
        profiler.start("completLoad", interval=1.0)
        for _ in range(50):
            profiler.add_sample_listener("completLoad", lambda v, a: None)
        cluster.advance(5.0)
        assert profiler.evaluations["completLoad"] == 5  # not 5 * 50
