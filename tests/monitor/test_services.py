"""Tests for the built-in profiling services."""

import pytest

from repro.errors import MonitoringError
from repro.cluster.workload import Client, DataSource, Echo, Server


class TestSystemServices:
    def test_complet_load(self, cluster):
        core = cluster["alpha"]
        assert core.profile_instant("completLoad") == 0.0
        Echo("a", _core=core)
        Echo("b", _core=core)
        assert core.profile_instant("completLoad", use_cache=False) == 2.0

    def test_tracker_load(self, cluster):
        core = cluster["alpha"]
        Echo("a", _core=core)
        assert core.profile_instant("trackerLoad") == 1.0

    def test_complet_size(self, cluster):
        core = cluster["alpha"]
        small = Echo("s", _core=core)
        big = DataSource(50_000, _core=core)
        small_size = core.profile_instant(
            "completSize", complet=str(small._fargo_target_id)
        )
        big_size = core.profile_instant(
            "completSize", complet=str(big._fargo_target_id), use_cache=False
        )
        assert big_size > small_size + 49_000

    def test_complet_size_unknown(self, cluster):
        with pytest.raises(MonitoringError):
            cluster["alpha"].profile_instant("completSize", complet="ghost")

    def test_core_memory_sums_closures(self, cluster):
        core = cluster["alpha"]
        assert core.profile_instant("coreMemory") == 0.0
        DataSource(10_000, _core=core)
        DataSource(10_000, _core=core)
        total = core.profile_instant("coreMemory", use_cache=False)
        assert total > 20_000

    def test_missing_param_rejected(self, cluster):
        with pytest.raises(MonitoringError):
            cluster["alpha"].profile_instant("completSize")


class TestProbes:
    def test_bandwidth_measures_configured_capacity(self, cluster):
        cluster.set_link("alpha", "beta", bandwidth=250_000.0, latency=0.05)
        measured = cluster["alpha"].profile_instant("bandwidth", peer="beta")
        assert measured == pytest.approx(250_000.0, rel=0.05)

    def test_latency_measured(self, cluster):
        cluster.set_link("alpha", "beta", bandwidth=10_000_000.0, latency=0.08)
        measured = cluster["alpha"].profile_instant("latency", peer="beta")
        assert measured == pytest.approx(0.08, rel=0.1)

    def test_bandwidth_tracks_link_changes(self, cluster):
        core = cluster["alpha"]
        cluster.set_link("alpha", "beta", bandwidth=1_000_000.0)
        first = core.profile_instant("bandwidth", peer="beta")
        cluster.set_link("alpha", "beta", bandwidth=100_000.0)
        cluster.advance(2.0)  # expire the cache
        second = core.profile_instant("bandwidth", peer="beta")
        assert second < first / 5

    def test_probe_charges_virtual_time(self, cluster):
        t0 = cluster.now
        cluster["alpha"].profile_instant("bandwidth", peer="beta")
        assert cluster.now > t0

    def test_link_bytes_counts_both_directions(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        echo.echo("payload")
        counted = cluster["alpha"].profile_instant("linkBytes", peer="beta")
        assert counted > 0


class TestApplicationServices:
    def _chatty_pair(self, cluster):
        server = Server(_core=cluster["beta"], _at="beta")
        client = Client(server, _core=cluster["alpha"])
        return (
            client,
            server,
            str(client._fargo_target_id),
            str(server._fargo_target_id),
        )

    def test_invocation_rate(self, cluster):
        client, server, cid, sid = self._chatty_pair(cluster)
        core = cluster["alpha"]
        core.profile_start("invocationRate", interval=1.0, src=cid, dst=sid)
        cluster.advance(1.0)
        client.run(10)
        cluster.advance(1.0)
        assert core.profile_get("invocationRate", src=cid, dst=sid) > 1.0

    def test_invocation_count_total(self, cluster):
        client, server, cid, sid = self._chatty_pair(cluster)
        client.run(7)
        count = cluster["alpha"].profile_instant("invocationCount", src=cid, dst=sid)
        assert count == 7.0

    def test_byte_rate_scales_with_payload(self, cluster):
        client, server, cid, sid = self._chatty_pair(cluster)
        core = cluster["alpha"]
        core.profile_start("byteRate", interval=1.0, src=cid, dst=sid)
        cluster.advance(1.0)
        client.run(5)
        cluster.advance(1.0)
        assert core.profile_get("byteRate", src=cid, dst=sid) > 100.0

    def test_external_attribution(self, cluster):
        """Driver-code invocations are attributed to the 'external' source."""
        echo = Echo("x", _core=cluster["alpha"])
        echo.ping()
        count = cluster["alpha"].profile_instant(
            "invocationCount", src="external", dst=str(echo._fargo_target_id)
        )
        assert count == 1.0

    def test_cpu_load(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        core = cluster["alpha"]
        core.profile_start("cpuLoad", interval=1.0)
        cluster.advance(1.0)
        for _ in range(20):
            echo.ping()
        cluster.advance(1.0)
        assert core.profile_get("cpuLoad") > 5.0

    def test_served_rate_per_complet(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        core = cluster["alpha"]
        eid = str(echo._fargo_target_id)
        core.profile_start("servedRate", interval=1.0, complet=eid)
        cluster.advance(1.0)
        for _ in range(10):
            echo.ping()
        cluster.advance(1.0)
        assert core.profile_get("servedRate", complet=eid) > 2.0
