"""Edge cases of the bandwidth/latency probes."""

import pytest

from repro.cluster.cluster import Cluster


class TestProbeEdges:
    def test_loopback_bandwidth_is_unbounded(self, cluster):
        """Probing yourself costs nothing and reports infinite bandwidth."""
        value = cluster["alpha"].profile_instant("bandwidth", peer="alpha")
        assert value == float("inf")

    def test_loopback_latency_is_zero(self, cluster):
        assert cluster["alpha"].profile_instant("latency", peer="alpha") == 0.0

    def test_probe_of_dead_peer_raises(self, cluster):
        from repro.errors import CoreDownError

        cluster.network.set_node_down("beta")
        with pytest.raises(CoreDownError):
            cluster["alpha"].profile_instant("bandwidth", peer="beta")

    def test_extreme_asymmetry_measured_on_request_leg(self):
        """The probe measures the direction it sends the bulk data."""
        cluster = Cluster(["a", "b"])
        cluster.set_link("a", "b", bandwidth=50_000.0, symmetric=False)
        cluster.set_link("b", "a", bandwidth=10_000_000.0, symmetric=False)
        forward = cluster["a"].profile_instant("bandwidth", peer="b")
        backward = cluster["b"].profile_instant("bandwidth", peer="a")
        assert forward == pytest.approx(50_000.0, rel=0.1)
        assert backward == pytest.approx(10_000_000.0, rel=0.1)

    def test_probe_cost_is_bounded(self, cluster):
        """One probe pair costs at most ~2 round trips of the large probe."""
        from repro.monitor.services import PROBE_LARGE, PROBE_SMALL

        cluster.set_link("alpha", "beta", bandwidth=100_000.0, latency=0.01)
        t0 = cluster.now
        cluster["alpha"].profile_instant("bandwidth", peer="beta", use_cache=False)
        elapsed = cluster.now - t0
        upper_bound = 2 * (0.01 * 2 + (PROBE_SMALL + PROBE_LARGE + 100) / 100_000.0)
        assert elapsed <= upper_bound

    def test_cached_probe_costs_nothing(self, cluster):
        cluster["alpha"].profile_instant("bandwidth", peer="beta")
        t0 = cluster.now
        cluster["alpha"].profile_instant("bandwidth", peer="beta")
        assert cluster.now == t0
