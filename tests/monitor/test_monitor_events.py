"""Tests for threshold monitor events (§4.2)."""

import pytest

from repro.errors import ConfigurationError
from repro.monitor.events import WatchSpec
from repro.cluster.workload import Echo


class TestThresholdWatches:
    def test_event_on_crossing(self, cluster):
        core = cluster["alpha"]
        fired = []
        core.events.subscribe("completLoad>2", fired.append)
        core.monitor.watch("completLoad", ">", 2.0, interval=1.0)
        cluster.advance(1.0)
        assert fired == []
        for _ in range(3):
            Echo("x", _core=core)
        # The exponential average needs a few samples of "3" to cross 2.
        cluster.advance(4.0)
        assert len(fired) == 1
        assert fired[0].data["value"] >= 2.0
        assert fired[0].data["threshold"] == 2.0

    def test_edge_triggered_by_default(self, cluster):
        core = cluster["alpha"]
        fired = []
        core.events.subscribe("completLoad>0", fired.append)
        core.monitor.watch("completLoad", ">", 0.0, interval=1.0, alpha_unused=None)
        Echo("x", _core=core)
        cluster.advance(5.0)
        assert len(fired) == 1  # stays above threshold: no re-fire

    def test_refires_after_dropping_below(self, cluster):
        core = cluster["alpha"]
        fired = []
        core.events.subscribe("completLoad>0", fired.append)
        core.monitor.watch("completLoad", ">", 0.5, interval=1.0, event_name="completLoad>0")
        echo = Echo("x", _core=core)
        cluster.advance(1.0)
        assert len(fired) == 1
        cluster.move(echo, "beta")  # load drops to 0
        cluster.advance(3.0)  # EMA decays below 0.5
        Echo("y", _core=core)
        cluster.advance(3.0)
        assert len(fired) == 2

    def test_repeat_mode(self, cluster):
        core = cluster["alpha"]
        fired = []
        core.events.subscribe("load-high", fired.append)
        core.monitor.watch(
            "completLoad", ">", 0.0, interval=1.0, event_name="load-high", repeat=True
        )
        Echo("x", _core=core)
        cluster.advance(4.0)
        assert len(fired) == 4

    def test_below_threshold_direction(self, cluster):
        core = cluster["alpha"]
        fired = []
        core.events.subscribe("completLoad<1", fired.append)
        core.monitor.watch("completLoad", "<", 1.0, interval=1.0)
        cluster.advance(1.0)
        assert len(fired) == 1  # empty core is below threshold

    def test_unknown_operator(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster["alpha"].monitor.watch("completLoad", "!=", 1.0)

    def test_unwatch_stops_events_and_profiling(self, cluster):
        core = cluster["alpha"]
        fired = []
        core.events.subscribe("load-evt", fired.append)
        watch_id = core.monitor.watch(
            "completLoad", ">", 0.0, interval=1.0, event_name="load-evt", repeat=True
        )
        Echo("x", _core=core)
        cluster.advance(2.0)
        core.monitor.unwatch(watch_id)
        cluster.advance(5.0)
        assert len(fired) == 2
        assert core.profiler.active_profiles() == 0

    def test_many_watchers_one_sampler(self, cluster):
        """§4.2: thresholds filter per listener; measurement is shared."""
        core = cluster["alpha"]
        for threshold in range(20):
            core.monitor.watch("completLoad", ">", float(threshold), interval=1.0)
        cluster.advance(5.0)
        assert core.profiler.evaluations["completLoad"] == 5
        assert core.profiler.active_profiles() == 1

    def test_default_event_name(self):
        spec = WatchSpec(service="cpuLoad", op=">", threshold=2.5)
        assert spec.resolved_event_name() == "cpuLoad>2.5"

    def test_fired_count_tracking(self, cluster):
        core = cluster["alpha"]
        watch_id = core.monitor.watch(
            "completLoad", ">", 0.0, interval=1.0, repeat=True
        )
        Echo("x", _core=core)
        cluster.advance(3.0)
        assert core.monitor.fired_count(watch_id) == 3
        assert core.monitor.fired_count(999) == 0

    def test_registration_starts_profiling(self, cluster):
        """§4.2: event registration invokes the proper start method."""
        core = cluster["alpha"]
        assert core.profiler.active_profiles() == 0
        core.monitor.watch("completLoad", ">", 1.0)
        assert core.profiler.active_profiles() == 1

    def test_shutdown_clears_watches(self, cluster):
        core = cluster["alpha"]
        core.monitor.watch("completLoad", ">", 1.0)
        core.monitor.shutdown()
        assert core.monitor.active_watches() == 0
        assert core.profiler.active_profiles() == 0


class TestDistributedMonitorEvents:
    def test_remote_core_subscribes_to_threshold_event(self, cluster):
        """The distributed-event capability §4.2 calls essential."""
        fired = []
        cluster["beta"].events.subscribe_remote("alpha", "completLoad>0", fired.append)
        cluster["alpha"].monitor.watch("completLoad", ">", 0.0, interval=1.0)
        Echo("x", _core=cluster["alpha"])
        cluster.advance(1.0)
        assert len(fired) == 1
        assert fired[0].origin == "alpha"

    def test_complet_listener_for_threshold_event(self, cluster):
        from tests.anchors import Listener

        listener = Listener(_core=cluster["beta"], _at="beta")
        cluster["alpha"].events.subscribe_complet("completLoad>0", listener)
        cluster["alpha"].monitor.watch("completLoad", ">", 0.0, interval=1.0)
        Echo("x", _core=cluster["alpha"])
        cluster.advance(1.0)
        assert listener.events_seen() == ["completLoad>0"]
