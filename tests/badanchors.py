"""A module with a deliberately broken anchor (compiler CLI error tests)."""

from repro.complet.anchor import Anchor


class NoUnderscore(Anchor):
    """Violates the anchor naming convention: the compiler must reject it."""

    def touch(self) -> str:
        return "bad"
