"""Tests for the diagnostic framework: catalog, rendering, suppression."""

import json

import pytest

from repro.analysis.diagnostics import (
    RULES,
    Severity,
    apply_suppressions,
    diag,
    has_errors,
    render_json,
    render_sarif,
    render_text,
    sort_diagnostics,
    suppressed_lines,
    unused_suppressions,
    worst_severity,
)


class TestCatalog:
    def test_all_codes_have_family_and_title(self):
        assert len(RULES) >= 12
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.title
            assert rule.family in {
                "framework", "script", "relocation", "movability",
                "interaction", "plan",
            }

    def test_families_cover_all_analyzers(self):
        families = {rule.family for rule in RULES.values()}
        assert {"script", "relocation", "movability", "interaction", "plan"} <= families

    def test_severity_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank


class TestDiag:
    def test_defaults_severity_from_catalog(self):
        d = diag("FG101", "boom")
        assert d.severity is Severity.ERROR
        assert diag("FG107", "meh").severity is Severity.WARNING

    def test_severity_override(self):
        d = diag("FG107", "boom", severity=Severity.ERROR)
        assert d.severity is Severity.ERROR

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            diag("FG999", "no such rule")

    def test_render_with_and_without_location(self):
        located = diag("FG101", "boom", file="s.fgs", line=3, column=7)
        assert located.render() == "s.fgs:3:7: error FG101: boom"
        bare = diag("FG201", "big move")
        assert bare.render() == "<input>: warning FG201: big move"

    def test_at_remaps_line(self):
        d = diag("FG103", "x", line=2, column=5)
        moved = d.at(file="host.py", line=42)
        assert (moved.file, moved.line, moved.column) == ("host.py", 42, 5)
        assert d.line == 2  # original untouched


class TestAggregates:
    def test_sorting_is_by_location_then_code(self):
        d1 = diag("FG104", "b", file="b.fgs", line=1)
        d2 = diag("FG101", "a", file="a.fgs", line=9)
        d3 = diag("FG103", "a2", file="a.fgs", line=2)
        assert sort_diagnostics([d1, d2, d3]) == [d3, d2, d1]

    def test_worst_severity_and_has_errors(self):
        warns = [diag("FG107", "w")]
        assert worst_severity(warns) is Severity.WARNING
        assert not has_errors(warns)
        assert worst_severity([]) is None
        assert has_errors(warns + [diag("FG101", "e")])


class TestSuppression:
    def test_bare_ignore_suppresses_everything(self):
        table = suppressed_lines("move $c to x  # fargo: ignore\n")
        assert table == {1: None}

    def test_coded_ignore(self):
        table = suppressed_lines("x\ny  # fargo: ignore[FG104, FG105]\n")
        assert table == {2: frozenset({"FG104", "FG105"})}

    def test_apply_drops_only_matching_lines_and_codes(self):
        source = "line one\nline two  # fargo: ignore[FG104]\n"
        kept = apply_suppressions(
            [
                diag("FG104", "suppressed", line=2),
                diag("FG101", "other code", line=2),
                diag("FG104", "other line", line=1),
            ],
            source,
        )
        assert [(d.code, d.line) for d in kept] == [("FG101", 2), ("FG104", 1)]

    def test_no_suppressions_is_identity(self):
        diags = [diag("FG101", "x", line=1)]
        assert apply_suppressions(diags, "plain\n") == diags


class TestUnusedSuppressions:
    def test_matching_suppression_is_not_reported(self):
        source = "bad  # fargo: ignore[FG104]\n"
        diags = [diag("FG104", "x", line=1)]
        assert unused_suppressions(diags, source) == []

    def test_blanket_on_clean_line_is_fg001(self):
        findings = unused_suppressions([], "fine  # fargo: ignore\n", file="s.fgs")
        assert [d.code for d in findings] == ["FG001"]
        assert findings[0].severity is Severity.INFO
        assert (findings[0].file, findings[0].line) == ("s.fgs", 1)
        assert "unused blanket suppression" in findings[0].message

    def test_wrong_code_is_fg001_naming_the_dead_codes(self):
        source = "bad  # fargo: ignore[FG104, FG105]\n"
        diags = [diag("FG104", "x", line=1)]
        (finding,) = unused_suppressions(diags, source)
        assert "FG105" in finding.message
        assert "FG104" not in finding.message

    def test_blanket_with_any_diagnostic_is_used(self):
        source = "bad  # fargo: ignore\n"
        assert unused_suppressions([diag("FG104", "x", line=1)], source) == []


class TestReporters:
    def test_render_text_summary(self):
        out = render_text([diag("FG101", "e", line=1), diag("FG107", "w", line=2)])
        assert out.endswith("1 error(s), 1 warning(s)")
        assert "error FG101" in out

    def test_render_text_empty(self):
        assert render_text([]) == "no diagnostics"

    def test_render_json_round_trips(self):
        payload = json.loads(render_json([diag("FG104", "m", file="f", line=3)]))
        assert payload == [
            {
                "code": "FG104",
                "severity": "error",
                "message": "m",
                "file": "f",
                "line": 3,
                "column": 0,
            }
        ]

    def test_render_sarif_shape(self):
        document = json.loads(
            render_sarif(
                [
                    diag("FG104", "unknown Core", file="s.fgs", line=2, column=5),
                    diag("FG107", "duplicate", file="s.fgs", line=4),
                ]
            )
        )
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        rules = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rules == {"FG104", "FG107"}
        results = run["results"]
        assert [r["ruleId"] for r in results] == ["FG104", "FG107"]
        assert results[0]["level"] == "error"
        assert results[1]["level"] == "warning"
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "s.fgs"
        assert location["region"] == {"startLine": 2, "startColumn": 5}

    def test_render_sarif_empty_report(self):
        document = json.loads(render_sarif([]))
        assert document["runs"][0]["results"] == []

    def test_sarif_and_json_share_the_record_shape(self):
        d = diag("FG104", "m", file="f.fgs", line=3)
        json_record = json.loads(render_json([d]))[0]
        sarif_result = json.loads(render_sarif([d]))["runs"][0]["results"][0]
        assert sarif_result["ruleId"] == json_record["code"]
        assert sarif_result["message"]["text"] == json_record["message"]
        physical = sarif_result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == json_record["file"]
        assert physical["region"]["startLine"] == json_record["line"]

    def test_diagnostic_is_hashable_and_frozen(self):
        d = diag("FG101", "x")
        assert d in {d}
        with pytest.raises(AttributeError):
            d.code = "FG102"
