"""Tests for the script checker: one positive and one negative case per rule."""

from repro.analysis import TopologyInfo, check_script


def codes(source, **kwargs):
    return [d.code for d in check_script(source, **kwargs)]


TOPO = TopologyInfo(
    cores=frozenset({"c1", "c2", "safe"}),
    complets=frozenset({"srv", "cli"}),
)


class TestFG100Parse:
    def test_syntax_error_becomes_diagnostic(self):
        diagnostics = check_script("on shutdown do\n move", file="x.fgs")
        assert [d.code for d in diagnostics] == ["FG100"]
        assert diagnostics[0].file == "x.fgs"
        assert diagnostics[0].line >= 1

    def test_valid_script_is_clean(self):
        assert codes('on shutdown firedby $c do\n log "bye"\nend') == []


class TestFG101Undefined:
    def test_undefined_variable(self):
        out = check_script("on timer(5) do\n move $ghost to c1\nend")
        assert [d.code for d in out] == ["FG101"]
        assert "$ghost" in out[0].message

    def test_suggestion_for_near_miss(self):
        out = check_script('$server = "x"\non timer(5) do\n log $servr\nend')
        assert "did you mean 'server'" in out[0].message

    def test_assignment_and_firedby_define(self):
        src = "$dest = %1\non shutdown firedby $core do\n move completsIn $core to $dest\nend"
        assert codes(src) == []

    def test_set_action_defines_for_later_actions(self):
        src = 'on timer(5) do\n $d = "c1"\n move $x to $d\nend'
        assert codes(src) == ["FG101"]  # only $x; $d is defined by the assignment


class TestFG102Args:
    def test_zero_index_can_never_bind(self):
        assert codes("$a = %0") == ["FG102"]

    def test_index_beyond_declared_count(self):
        assert codes("$a = %3", expected_args=2) == ["FG102"]

    def test_gap_in_argument_positions_warns(self):
        out = check_script("$a = %1\n$b = %3")
        assert [d.code for d in out] == ["FG102"]
        assert "%2" in out[0].message

    def test_contiguous_args_are_fine(self):
        assert codes("$a = %1\n$b = %2", expected_args=2) == []


class TestFG103Events:
    def test_unknown_event(self):
        out = check_script('on completArived do\n log "x"\nend')
        assert [d.code for d in out] == ["FG103"]
        assert "completArrived" in out[0].message  # suggestion

    def test_core_events_and_services_resolve(self):
        src = (
            'on shutdown firedby $c do\n log "a"\nend\n'
            'on methodInvokeRate(3) from "srv" to "cli" do\n log "b"\nend'
        )
        assert codes(src, topology=TOPO) == []


class TestFG104Cores:
    def test_unknown_core_in_move_destination(self):
        out = check_script('on timer(5) do\n move "srv" to "c9"\nend', topology=TOPO)
        assert [d.code for d in out] == ["FG104"]

    def test_unknown_core_in_listen_at(self):
        src = 'on shutdown firedby $c listenAt ["c1", "nope"] do\n log "x"\nend'
        assert codes(src, topology=TOPO) == ["FG104"]

    def test_no_topology_disables_the_check(self):
        assert codes('on timer(5) do\n move "srv" to "c9"\nend') == []


class TestFG105Complets:
    def test_unknown_complet_warns(self):
        out = check_script(
            'on timer(5) do\n move "ghost" to "c1"\nend', topology=TOPO
        )
        assert [d.code for d in out] == ["FG105"]
        assert out[0].severity.value == "warning"

    def test_known_complet_is_clean(self):
        assert codes('on timer(5) do\n move "srv" to "c1"\nend', topology=TOPO) == []


class TestFG106Types:
    def test_string_threshold(self):
        assert codes('on methodInvokeRate("hot") from "a" to "b" do\n log "x"\nend') \
            == ["FG106"]

    def test_non_positive_timer_interval(self):
        assert codes('on timer(0) do\n log "x"\nend') == ["FG106"]

    def test_unknown_comparison_operator(self):
        out = check_script('on cpuLoad(0.5, "~~") do\n log "x"\nend')
        assert [d.code for d in out] == ["FG106"]

    def test_number_destination_in_move(self):
        assert codes('on timer(5) do\n move "srv" to 7\nend') == ["FG106"]


class TestFG107Duplicates:
    def test_identical_rules_warn(self):
        rule = 'on shutdown firedby $c do\n move completsIn $c to "safe"\nend\n'
        out = check_script(rule + rule)
        assert [d.code for d in out] == ["FG107"]
        assert out[0].severity.value == "warning"

    def test_conflicting_destinations_error(self):
        src = (
            'on shutdown firedby $c do\n move "srv" to "c1"\nend\n'
            'on shutdown firedby $c do\n move "srv" to "c2"\nend'
        )
        out = check_script(src)
        assert [d.code for d in out] == ["FG107"]
        assert out[0].severity.value == "error"

    def test_different_rules_are_fine(self):
        src = (
            'on shutdown firedby $c do\n move "srv" to "c1"\nend\n'
            'on timer(9) do\n move "cli" to "c2"\nend'
        )
        assert codes(src) == []


class TestFG108MoveCycles:
    def test_two_core_ping_pong(self):
        src = (
            'on completArrived listenAt "c1" do\n move stray to "c2"\nend\n'
            'on completArrived listenAt "c2" do\n move stray to "c1"\nend'
        )
        out = check_script(src)
        assert [d.code for d in out] == ["FG108"]
        assert "c1" in out[0].message and "c2" in out[0].message

    def test_one_way_cascade_is_fine(self):
        src = (
            'on completArrived listenAt "c1" do\n move stray to "c2"\nend\n'
            'on completArrived listenAt "c2" do\n move stray to "c3"\nend'
        )
        assert codes(src) == []

    def test_unlistened_rule_spans_whole_universe(self):
        # No listenAt: the rule fires on arrivals anywhere, including the
        # destination Core itself — moving onward from there re-triggers it.
        src = (
            'on completArrived do\n move stray to "c1"\nend\n'
            'on completArrived listenAt "c1" do\n move stray to "c2"\nend'
        )
        assert "FG108" in codes(src)


class TestFG109Clauses:
    def test_timer_without_interval(self):
        assert codes('on timer() do\n log "x"\nend') == ["FG109"]

    def test_pair_service_needs_from_and_to(self):
        assert codes('on methodInvokeRate(3) do\n log "x"\nend') == ["FG109"]

    def test_peer_service_needs_to(self):
        assert codes('on latency(0.2) do\n log "x"\nend') == ["FG109"]

    def test_complet_service_needs_from(self):
        assert codes('on completSize(10000) do\n log "x"\nend') == ["FG109"]

    def test_complete_clauses_are_fine(self):
        assert codes('on latency(0.2) to "c2" do\n log "x"\nend', topology=TOPO) == []


class TestFG110Retype:
    def test_unknown_reference_type(self):
        out = check_script('on timer(5) do\n retype "srv" to pulll\nend')
        assert [d.code for d in out] == ["FG110"]
        assert "pull" in out[0].message  # suggestion

    def test_builtin_types_resolve(self):
        for name in ("link", "pull", "duplicate", "stamp"):
            assert codes(f'on timer(5) do\n retype "srv" to {name}\nend') == []


class TestFG111Calls:
    def test_unknown_action(self):
        out = check_script('on timer(5) do\n call colocte("a", "b")\nend')
        assert [d.code for d in out] == ["FG111"]
        assert "colocate" in out[0].message  # suggestion

    def test_retry_move_outside_move_failed(self):
        assert codes('on timer(5) do\n call retryMove(2)\nend') == ["FG111"]

    def test_retry_move_inside_move_failed(self):
        assert codes("on moveFailed do\n call retryMove(2)\nend") == []

    def test_module_colon_function_names_pass(self):
        assert codes('on timer(5) do\n call my.mod:act("x")\nend') == []


class TestTopologyInfo:
    def test_from_spec(self):
        topo = TopologyInfo.from_spec({"cores": ["a"], "complets": ["x"]})
        assert topo.cores == frozenset({"a"})
        assert topo.complets == frozenset({"x"})

    def test_from_cluster_includes_short_ids(self):
        from repro import Cluster
        from repro.cluster.workload import Echo

        cluster = Cluster(["a", "b"])
        Echo("e", _core=cluster["a"], _at="a")
        topo = TopologyInfo.from_cluster(cluster)
        assert topo.cores == frozenset({"a", "b"})
        full_ids = cluster.complets_at("a")
        assert set(full_ids) <= topo.complets
        assert len(topo.complets) > len(full_ids)  # short forms included


class TestSpansInDiagnostics:
    def test_diagnostic_points_at_the_offending_token(self):
        out = check_script('$x = "ok"\non timer(5) do\n move $ghost to "c1"\nend')
        (d,) = out
        assert d.line == 3
        assert d.column > 1


class TestRecoveryEvents:
    def test_liveness_events_resolve(self):
        src = (
            'on coreSuspected firedby $c do\n log "s"\nend\n'
            'on coreFailed firedby $c do\n log "f"\nend\n'
            'on coreRecovered firedby $c do\n log "r"\nend\n'
            'on coreReconciled firedby $c do\n log "c"\nend\n'
            'on completRecovered firedby $x do\n log "x"\nend\n'
            'on completRestored firedby $x do\n log "y"\nend'
        )
        assert codes(src) == []

    def test_misspelled_liveness_event_suggests(self):
        out = check_script('on coreFaild firedby $c do\n log "x"\nend')
        assert [d.code for d in out] == ["FG103"]
        assert "coreFailed" in out[0].message


class TestFG111Failover:
    def test_argless_failover_outside_core_failed(self):
        out = check_script('on shutdown firedby $c do\n call failover()\nend')
        assert [d.code for d in out] == ["FG111"]
        assert "coreFailed" in out[0].message

    def test_argless_failover_inside_core_failed(self):
        src = "on coreFailed firedby $c do\n call failover()\nend"
        assert codes(src) == []

    def test_failover_with_core_argument_anywhere(self):
        src = 'on timer(10) do\n call failover("c1")\nend'
        assert codes(src) == []

    def test_restore_action_is_known(self):
        src = 'on timer(10) do\n call restore("srv", "c1")\nend'
        assert codes(src, topology=TOPO) == []
