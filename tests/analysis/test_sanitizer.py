"""Tests for the dynamic LayoutSanitizer (``Cluster(sanitize=True)``)."""

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter
from repro.script.interpreter import ScriptEngine


def raced_cluster():
    """The acceptance scenario: two scripts racing one complet's move.

    The trigger complets live on *different* Cores ("f" and "g") so the
    two rule firings are causally independent — hosting both triggers on
    one Core would thread the first move's commit stamp into the second
    firing's clock and (correctly) serialize them.
    """
    cluster = Cluster(["a", "b", "c", "d", "e", "f", "g"], sanitize=True)
    Counter(0, _core=cluster["c"], _at="c")
    (target_id,) = cluster.complets_at("c")
    e1 = ScriptEngine(cluster, home="a")
    e2 = ScriptEngine(cluster, home="b")
    e1.run(f'on completArrived listenAt [a] do move "{target_id}" to "d" end')
    e2.run(f'on completArrived listenAt [b] do move "{target_id}" to "e" end')
    trigger1 = Counter(0, _core=cluster["f"], _at="f")
    trigger2 = Counter(0, _core=cluster["g"], _at="g")
    cluster.move(trigger1, "a")
    cluster.move(trigger2, "b")
    return cluster, target_id


class TestRaceDetection:
    def test_deliberately_raced_two_script_move_is_detected(self):
        cluster, target_id = raced_cluster()
        races = cluster.sanitizer.races
        assert len(races) == 1
        race = races[0]
        assert race.subject == target_id
        assert {race.first_kind, race.second_kind} == {"move"}
        assert {race.first_detail, race.second_detail} == {"d", "e"}
        assert "rule(on completArrived)@a" in (race.first_label, race.second_label)

    def test_race_surfaces_as_fg410_in_analyze(self):
        cluster, target_id = raced_cluster()
        fg410 = [d for d in cluster.analyze() if d.code == "FG410"]
        assert len(fg410) == 1
        assert target_id in fg410[0].message

    def test_race_was_also_statically_warned(self):
        # The dynamic finding has a static counterpart on the same set.
        cluster, _ = raced_cluster()
        assert any(d.code == "FG401" for d in cluster.analyze())

    def test_race_increments_the_metric(self):
        cluster, _ = raced_cluster()
        total = sum(
            core.metrics.counter_value("sanitizer.races")
            for core in cluster.cores.values()
        )
        assert total == 1

    def test_race_emits_a_span_when_tracing(self):
        cluster = Cluster(
            ["a", "b", "c", "d", "e", "f", "g"], tracing=True, sanitize=True
        )
        Counter(0, _core=cluster["c"], _at="c")
        (target_id,) = cluster.complets_at("c")
        e1 = ScriptEngine(cluster, home="a")
        e2 = ScriptEngine(cluster, home="b")
        e1.run(f'on completArrived listenAt [a] do move "{target_id}" to "d" end')
        e2.run(f'on completArrived listenAt [b] do move "{target_id}" to "e" end')
        cluster.move(Counter(0, _core=cluster["f"], _at="f"), "a")
        cluster.move(Counter(0, _core=cluster["g"], _at="g"), "b")
        assert len(cluster.sanitizer.races) == 1
        spans = [
            span
            for trace in cluster.traces().values()
            for span in trace.spans
            if span.name == "sanitizer:race"
        ]
        assert len(spans) == 1


class TestNoFalsePositives:
    def test_sequential_moves_do_not_race(self):
        cluster = Cluster(["a", "b", "c"], sanitize=True)
        counter = Counter(0, _core=cluster["a"], _at="a")
        cluster.move(counter, "b")
        cluster.move(counter, "c")
        cluster.move(counter, "a")
        assert cluster.sanitizer.races == []

    def test_causally_chained_rule_moves_do_not_race(self):
        # One trigger Core: the second firing sees the first move's
        # commit in its origin clock, so the moves are ordered.
        cluster = Cluster(["a", "b", "c", "d", "e"], sanitize=True)
        Counter(0, _core=cluster["c"], _at="c")
        (target_id,) = cluster.complets_at("c")
        engine = ScriptEngine(cluster, home="a")
        engine.run(f'on completArrived listenAt [a] do move "{target_id}" to "d" end')
        trigger = Counter(0, _core=cluster["b"], _at="b")
        cluster.move(trigger, "a")
        cluster.move(Counter(0, _core=cluster["a"], _at="a"), "b")
        assert cluster.sanitizer.races == []

    def test_sanitize_off_records_nothing(self):
        cluster = Cluster(["a", "b"])
        assert cluster.sanitizer is None
        counter = Counter(0, _core=cluster["a"], _at="a")
        cluster.move(counter, "b")

    def test_sequential_recoveries_do_not_race(self):
        # Two crash/recover episodes restore the same complet at
        # different Cores; the recovery actor's clock chains them, so
        # the two restores are ordered, not racing.
        from repro.cluster.failures import FailureInjector
        from repro.recovery import CheckpointPolicy

        cluster = Cluster(["a", "b", "c", "d"], sanitize=True)
        cluster.enable_recovery()
        injector = FailureInjector(cluster)
        counter = Counter(0, _core=cluster["a"], _at="a")
        cluster.checkpoints.protect(counter, CheckpointPolicy(interval=0.5))
        injector.crash_core_at(2.0, "a")
        cluster.advance(12.0)
        assert len(cluster.recovery.reports) == 1
        first_home = cluster.recovery.reports[0].destination
        assert first_home != "a"  # the first recovery re-placed it
        injector.crash_core_at(cluster.now + 1.0, first_home)
        cluster.advance(12.0)
        assert len(cluster.recovery.reports) == 2
        second_home = cluster.recovery.reports[1].destination
        assert second_home not in ("a", first_home)
        assert cluster.sanitizer.races == []


class TestRetypeAndRestoreRaces:
    def test_concurrent_retype_race_is_detected(self):
        cluster = Cluster(["a", "b", "c", "f", "g"], sanitize=True)
        server = Counter(0, _core=cluster["c"], _at="c")
        e1 = ScriptEngine(cluster, home="a")
        e2 = ScriptEngine(cluster, home="b")
        e1._globals["r"] = server
        e2._globals["r"] = server
        e1.run("on completArrived listenAt [a] do retype $r to pull end")
        e2.run("on completArrived listenAt [b] do retype $r to duplicate end")
        cluster.move(Counter(0, _core=cluster["f"], _at="f"), "a")
        cluster.move(Counter(0, _core=cluster["g"], _at="g"), "b")
        retype_races = [
            race
            for race in cluster.sanitizer.races
            if {race.first_kind, race.second_kind} == {"retype"}
        ]
        assert len(retype_races) == 1
        assert {retype_races[0].first_detail, retype_races[0].second_detail} == {
            "pull", "duplicate",
        }
