"""Tests for the relocation-semantics checker over live clusters."""

from repro.analysis import check_relocation, mutating_methods
from repro.cluster.cluster import Cluster
from repro.complet.anchor import Anchor
from repro.complet.stub import compile_complet
from repro.cluster.workload import (
    DataSource,
    DataSource_,
    Desktop,
    Echo_,
    Printer,
    Worker,
)


def codes(cluster, **kwargs):
    return [d.code for d in check_relocation(cluster, **kwargs)]


class Frozen_(Anchor):
    """Bulky but immutable: no public method assigns into self."""

    def __init__(self, blob: str = "") -> None:
        self.blob = blob

    def peek(self) -> int:
        return len(self.blob)


Frozen = compile_complet(Frozen_)


def retype(cluster, host, source_idx, target_idx, type_name):
    ids = cluster.complets_at(host)
    assert cluster.admin(host).retype(ids[source_idx], ids[target_idx], type_name)


class TestFG201Amplification:
    def test_pull_of_a_bulky_complet_warns(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(size=200_000, _core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        retype(cluster, "a", 1, 0, "pull")
        out = check_relocation(cluster)
        assert [d.code for d in out] == ["FG201"]
        assert "amplification" in out[0].message

    def test_transitive_pull_chain_counts_fully(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(size=200_000, _core=cluster["a"], _at="a")
        middle = Worker(source, _core=cluster["a"], _at="a")
        Worker(middle, _core=cluster["a"], _at="a")
        retype(cluster, "a", 1, 0, "pull")   # middle pulls source
        retype(cluster, "a", 2, 1, "pull")   # outer pulls middle
        out = [d for d in check_relocation(cluster) if d.code == "FG201"]
        assert len(out) == 2  # both roots amplify

    def test_link_references_do_not_amplify(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(size=200_000, _core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        assert codes(cluster) == []  # default link semantics

    def test_threshold_is_configurable(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(size=200_000, _core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        retype(cluster, "a", 1, 0, "pull")
        assert codes(cluster, amplification_threshold=1e9) == []


class TestFG202DuplicateMutability:
    def test_duplicate_of_a_mutable_target_warns(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(_core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        retype(cluster, "a", 1, 0, "duplicate")
        out = [d for d in check_relocation(cluster) if d.code == "FG202"]
        assert len(out) == 1
        assert "read()" in out[0].message  # read() bumps self.reads

    def test_mutating_methods_detects_stores(self):
        assert "read" in mutating_methods(DataSource_)
        assert "echo" in mutating_methods(Echo_)

    def test_mutating_methods_skips_private_and_callbacks(self):
        class Quiet_(Echo_):
            def peek(self):
                return self.calls

            def _internal(self):
                self.calls = 0

            def post_arrival(self):
                self.calls = 0

        names = mutating_methods(Quiet_)
        assert "peek" not in names
        assert "_internal" not in names
        assert "post_arrival" not in names


class TestFG203StampResolution:
    def test_stamp_with_no_replica_anywhere_is_an_error(self):
        cluster = Cluster(["a", "b", "c"])
        printer = Printer("siteA", _core=cluster["a"], _at="a")
        Desktop(printer, _core=cluster["a"], _at="a")
        retype(cluster, "a", 1, 0, "stamp")
        out = [d for d in check_relocation(cluster) if d.code == "FG203"]
        assert len(out) == 1
        assert out[0].severity.value == "error"
        assert "Printer" in out[0].message

    def test_stamp_with_replicas_everywhere_is_clean(self):
        cluster = Cluster(["a", "b"])
        printer = Printer("siteA", _core=cluster["a"], _at="a")
        Desktop(printer, _core=cluster["a"], _at="a")
        Printer("siteB", _core=cluster["b"], _at="b")
        retype(cluster, "a", 1, 0, "stamp")
        assert [d.code for d in check_relocation(cluster)] == []

    def test_partial_coverage_is_a_warning(self):
        cluster = Cluster(["a", "b", "c"])
        printer = Printer("siteA", _core=cluster["a"], _at="a")
        Desktop(printer, _core=cluster["a"], _at="a")
        Printer("siteB", _core=cluster["b"], _at="b")
        retype(cluster, "a", 1, 0, "stamp")
        out = [d for d in check_relocation(cluster) if d.code == "FG203"]
        assert len(out) == 1
        assert out[0].severity.value == "warning"
        assert "c" in out[0].message


class TestFG204MixedSemantics:
    def test_pull_and_duplicate_to_same_target(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(_core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        # Two fields referencing the same target with clashing semantics.
        holder = next(
            anchor
            for anchor in cluster["a"].repository.anchors()
            if type(anchor).__name__ == "Worker_"
        )
        from repro.complet.relocators import Duplicate, Pull
        from repro.complet.stub import stub_meta

        holder.extra = cluster.stub_at("a", holder.source)
        stub_meta(holder.source).set_relocator(Pull())
        stub_meta(holder.extra).set_relocator(Duplicate())
        out = [d for d in check_relocation(cluster) if d.code == "FG204"]
        assert len(out) == 1
        assert "pull" in out[0].message and "duplicate" in out[0].message

    def test_single_semantics_is_clean(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(_core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        retype(cluster, "a", 1, 0, "pull")
        assert "FG204" not in codes(cluster)


class TestFG205StoreOffload:
    """Large mutable duplicates should be offloaded through the store."""

    def _duplicated_bulk_source(self, **cluster_kwargs):
        cluster = Cluster(["a", "b"], **cluster_kwargs)
        # DataSource_.read()/checksum() mutate (self.reads), and 200 KB
        # clears the default 64 KiB offload threshold.
        source = DataSource(size=200_000, _core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        retype(cluster, "a", 1, 0, "duplicate")
        return cluster

    def test_no_store_warns(self):
        cluster = self._duplicated_bulk_source()
        out = [d for d in check_relocation(cluster) if d.code == "FG205"]
        assert len(out) == 1
        assert "Cluster(store=...)" in out[0].message

    def test_effective_store_is_clean(self):
        cluster = self._duplicated_bulk_source(store="memory")
        assert "FG205" not in codes(cluster)

    def test_too_high_threshold_warns_with_remedy(self):
        cluster = self._duplicated_bulk_source(
            store="memory", store_threshold=10_000_000
        )
        out = [d for d in check_relocation(cluster) if d.code == "FG205"]
        assert len(out) == 1
        assert "store_threshold" in out[0].message

    def test_small_duplicate_is_clean(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(size=1_000, _core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        retype(cluster, "a", 1, 0, "duplicate")
        assert "FG205" not in codes(cluster)

    def test_immutable_bulk_duplicate_is_clean(self):
        cluster = Cluster(["a", "b"])
        frozen = Frozen("bulk" * 50_000, _core=cluster["a"], _at="a")
        Worker(frozen, _core=cluster["a"], _at="a")
        retype(cluster, "a", 1, 0, "duplicate")
        assert "FG205" not in codes(cluster)


class TestClusterAnalyze:
    def test_clean_cluster_reports_nothing(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(_core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        assert cluster.analyze() == []

    def test_script_resolves_against_live_topology(self):
        cluster = Cluster(["a", "b"])
        DataSource(_core=cluster["a"], _at="a")
        cid = cluster.complets_at("a")[0]
        out = cluster.analyze(f'on timer(5) do\n move "{cid}" to "ghost"\nend')
        assert [d.code for d in out] == ["FG104"]

    def test_combines_relocation_and_script_findings(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(size=200_000, _core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        retype(cluster, "a", 1, 0, "pull")
        cid = cluster.complets_at("a")[0]
        out = cluster.analyze(f'on timer(5) do\n move "{cid}" to "ghost"\nend')
        assert sorted(d.code for d in out) == ["FG104", "FG201"]
