"""Tests for the cross-script interaction checker (FG401–FG404, FG108)."""

from repro.analysis.interaction import (
    check_interaction,
    co_firable,
    coerce_scripts,
    find_move_races,
    find_recovery_conflicts,
    find_retype_races,
    script_set_effects,
)
from repro.analysis.script_check import TopologyInfo, check_script


def effects_of(*sources: str):
    return script_set_effects(coerce_scripts(list(sources)))


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestCoFirability:
    def test_same_frontier_events_co_fire(self):
        a, b = effects_of(
            'on completArrived do log "x" end',
            'on moveCompleted do log "y" end',
        )
        assert co_firable(a, b)

    def test_different_frontiers_do_not_co_fire(self):
        a, b = effects_of(
            'on completArrived do log "x" end',
            'on coreFailed firedby $c do log "y" end',
        )
        assert not co_firable(a, b)

    def test_timer_co_fires_with_everything(self):
        a, b = effects_of(
            'on timer(5) do log "x" end',
            'on coreFailed firedby $c do log "y" end',
        )
        assert co_firable(a, b)

    def test_profiled_events_are_async(self):
        a, b = effects_of(
            "on cpuLoad(0.9) firedby $c do log \"x\" end",
            'on shutdown firedby $c do log "y" end',
        )
        assert co_firable(a, b)

    def test_listen_scopes_do_not_separate_rules(self):
        # Two arrivals at two different Cores can be in flight together.
        a, b = effects_of(
            'on completArrived listenAt [c1] do log "x" end',
            'on completArrived listenAt [c2] do log "y" end',
        )
        assert co_firable(a, b)


class TestMoveRaces:
    def test_cross_script_move_race_is_fg401(self):
        diagnostics = check_interaction(
            [
                ('on completArrived listenAt [a] do move "w" to "d" end', "a.fgs"),
                ('on completArrived listenAt [b] do move "w" to "e" end', "b.fgs"),
            ]
        )
        assert codes(diagnostics) == ["FG401"]
        d = diagnostics[0]
        assert "'w'" in d.message and "'d'" in d.message and "'e'" in d.message
        assert d.file == "b.fgs"

    def test_same_destination_is_not_a_race(self):
        diagnostics = check_interaction(
            [
                'on completArrived listenAt [a] do move "w" to "d" end',
                'on completArrived listenAt [b] do move "w" to "d" end',
            ]
        )
        assert diagnostics == []

    def test_non_co_firable_rules_do_not_race(self):
        diagnostics = check_interaction(
            [
                'on completArrived do move "w" to "d" end',
                'on coreFailed firedby $c do move "w" to "e" end',
            ]
        )
        assert diagnostics == []

    def test_fg107_covered_pair_is_not_duplicated(self):
        # Same script, literally identical trigger, literal destinations:
        # the single-script checker reports FG107, FG401 stays silent.
        source = (
            'on shutdown firedby $c do move "srv" to "c1" end\n'
            'on shutdown firedby $c do move "srv" to "c2" end\n'
        )
        per_script = check_script(source)
        assert "FG107" in [d.code for d in per_script]
        races = find_move_races(effects_of(source))
        assert races == []

    def test_same_trigger_across_scripts_is_still_a_race(self):
        races = find_move_races(
            effects_of(
                'on shutdown firedby $c do move "srv" to "c1" end',
                'on shutdown firedby $c do move "srv" to "c2" end',
            )
        )
        assert [race.subject for race in races] == ["srv"]


class TestOscillation:
    def test_cross_script_per_complet_cycle_is_fg402(self):
        diagnostics = check_interaction(
            [
                ('on completArrived listenAt [c1] do move "w" to "c2" end', "x.fgs"),
                ('on completArrived listenAt [c2] do move "w" to "c1" end', "y.fgs"),
            ]
        )
        by_code = {d.code for d in diagnostics}
        assert "FG402" in by_code
        fg402 = next(d for d in diagnostics if d.code == "FG402")
        assert "'w'" in fg402.message and "c1 -> c2 -> c1" in fg402.message or (
            "c2 -> c1 -> c2" in fg402.message
        )


class TestRecoveryConflicts:
    def test_move_races_named_restore(self):
        diagnostics = check_interaction(
            [
                'on completArrived do move "w" to "d" end',
                'on moveFailed firedby $m do call restore("w") end',
            ]
        )
        assert "FG403" in codes(diagnostics)
        d = next(d for d in diagnostics if d.code == "FG403")
        assert "restore of 'w'" in d.message

    def test_restore_of_other_complet_does_not_conflict(self):
        conflicts = find_recovery_conflicts(
            effects_of(
                'on completArrived do move "w" to "d" end',
                'on moveFailed firedby $m do call restore("other") end',
            )
        )
        assert conflicts == []

    def test_whole_core_failover_conflicts_with_any_move(self):
        diagnostics = check_interaction(
            [
                'on timer(5) do move "w" to "d" end',
                'on coreFailed firedby $f do call failover($f) end',
            ]
        )
        assert "FG403" in codes(diagnostics)
        d = next(d for d in diagnostics if d.code == "FG403")
        assert "whole-Core failover" in d.message

    def test_non_co_firable_recovery_is_silent(self):
        conflicts = find_recovery_conflicts(
            effects_of(
                'on completArrived do move "w" to "d" end',
                'on coreFailed firedby $f do call failover($f) end',
            )
        )
        assert conflicts == []


class TestRetypeRaces:
    def test_conflicting_retypes_are_fg404(self):
        diagnostics = check_interaction(
            [
                "on completArrived do retype $r to pull end",
                "on moveCompleted do retype $r to duplicate end",
            ]
        )
        assert codes(diagnostics) == ["FG404"]
        assert "'pull'" in diagnostics[0].message
        assert "'duplicate'" in diagnostics[0].message

    def test_same_type_retypes_do_not_race(self):
        races = find_retype_races(
            effects_of(
                "on completArrived do retype $r to pull end",
                "on moveCompleted do retype $r to pull end",
            )
        )
        assert races == []

    def test_different_references_do_not_race(self):
        races = find_retype_races(
            effects_of(
                "on completArrived do retype $r to pull end",
                "on moveCompleted do retype $q to duplicate end",
            )
        )
        assert races == []


class TestCrossScriptCycles:
    TWO_SCRIPT_CYCLE = [
        ('on completArrived listenAt [c1] do move $x to "c2" end', "one.fgs"),
        ('on completArrived listenAt [c2] do move $y to "c1" end', "two.fgs"),
    ]

    def test_cross_script_core_cycle_is_fg108(self):
        diagnostics = check_interaction(self.TWO_SCRIPT_CYCLE)
        assert "FG108" in codes(diagnostics)
        d = next(d for d in diagnostics if d.code == "FG108")
        assert "across the installed scripts" in d.message

    def test_single_script_cycle_is_left_to_check_script(self):
        # The same two rules in one script: check_script reports FG108,
        # check_interaction must not repeat it (byte-identical promise).
        source = (
            'on completArrived listenAt [c1] do move $x to "c2" end\n'
            'on completArrived listenAt [c2] do move $y to "c1" end\n'
        )
        assert "FG108" in [d.code for d in check_script(source)]
        assert check_interaction([source]) == []

    def test_single_script_diagnostics_unchanged_by_promotion(self):
        # Satellite 1's guarantee: per-script runs are byte-identical
        # whether or not the interaction checker exists.
        source = (
            'on completArrived listenAt [c1] do move $x to "c2" end\n'
            'on completArrived listenAt [c2] do move $y to "c1" end\n'
        )
        alone = check_script(source)
        again = check_script(source)
        assert alone == again
        assert [d.render() for d in alone] == [d.render() for d in again]


class TestInputShapes:
    def test_coerce_accepts_sources_scripts_and_pairs(self):
        from repro.script.parser import parse

        script = parse('on timer(5) do log "x" end')
        pairs = coerce_scripts(
            ['on timer(3) do log "y" end', script, (script, "named.fgs")]
        )
        assert [label for _, label in pairs] == [
            "<script#1>", "<script#2>", "named.fgs",
        ]

    def test_unparsable_sources_are_dropped(self):
        assert coerce_scripts(["on nope("]) == []

    def test_topology_feeds_cycle_universe(self):
        # An unscoped arrival rule ranges over the topology's Cores.
        diagnostics = check_interaction(
            [
                ('on completArrived do move "w" to "c2" end', "a.fgs"),
                ('on completArrived listenAt [c2] do move "w" to "c1" end', "b.fgs"),
            ],
            topology=TopologyInfo(cores=frozenset({"c1", "c2"})),
        )
        assert "FG402" in codes(diagnostics)
