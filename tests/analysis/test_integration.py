"""Integration: a deliberately broken deployment reports exactly the
expected codes — and the three entry points (CLI, shell ``lint``,
``Cluster.analyze``) agree on the same inputs."""

from pathlib import Path

from repro.analysis import TopologyInfo, render_text
from repro.analysis.cli import analyze_file
from repro.cluster.cluster import Cluster
from repro.cluster.workload import DataSource, Desktop, Printer, Worker
from repro.shell.shell import FarGoShell

#: A script wrong in four distinct ways against the cluster built below.
BROKEN_SCRIPT = (
    'on completArived do\n'                      # FG103 typo
    ' log "a"\nend\n'
    'on timer(5) do\n'
    ' move "ghost" to "nowhere"\nend\n'          # FG105 + FG104
    'on timer() do\n'                            # FG109 missing interval
    ' log "b"\nend\n'
)

EXPECTED_SCRIPT_CODES = ["FG103", "FG104", "FG105", "FG109"]


def broken_cluster() -> Cluster:
    """Pull amplification and an unsatisfiable stamp, by construction."""
    cluster = Cluster(["a", "b", "c"])
    source = DataSource(size=200_000, _core=cluster["a"], _at="a")
    Worker(source, _core=cluster["a"], _at="a")
    printer = Printer("siteA", _core=cluster["a"], _at="a")
    Desktop(printer, _core=cluster["a"], _at="a")
    ids = cluster.complets_at("a")
    admin = cluster.admin("a")
    assert admin.retype(ids[1], ids[0], "pull")    # worker pulls bulky source
    assert admin.retype(ids[3], ids[2], "stamp")   # desktop stamps lone printer
    return cluster


class TestBrokenDeployment:
    def test_expected_codes_and_nothing_else(self):
        cluster = broken_cluster()
        out = cluster.analyze(BROKEN_SCRIPT)
        assert sorted(d.code for d in out) == sorted(
            ["FG201", "FG203", *EXPECTED_SCRIPT_CODES]
        )

    def test_clean_deployment_reports_nothing(self):
        cluster = Cluster(["a", "b"])
        source = DataSource(_core=cluster["a"], _at="a")
        Worker(source, _core=cluster["a"], _at="a")
        good = 'on shutdown firedby $core do\n move completsIn $core to "b"\nend\n'
        assert cluster.analyze(good) == []


class TestEntryPointParity:
    def test_shell_lint_matches_cluster_analyze(self):
        cluster = broken_cluster()
        shell = FarGoShell(cluster, home="a")
        assert shell.execute("lint") == render_text(cluster.analyze())

    def test_shell_lint_file_matches_cli_analysis(self, tmp_path):
        cluster = broken_cluster()
        script = tmp_path / "deploy.fgs"
        script.write_text(BROKEN_SCRIPT)

        topology = TopologyInfo.from_cluster(cluster)
        cli_diagnostics = analyze_file(Path(script), topology=topology)
        shell = FarGoShell(cluster, home="a")
        assert shell.execute(f"lint @{script}") == render_text(cli_diagnostics)
        assert sorted(d.code for d in cli_diagnostics) == EXPECTED_SCRIPT_CODES

    def test_script_codes_agree_between_cli_and_cluster_analyze(self, tmp_path):
        cluster = broken_cluster()
        script = tmp_path / "deploy.fgs"
        script.write_text(BROKEN_SCRIPT)

        cli_diagnostics = analyze_file(
            Path(script), topology=TopologyInfo.from_cluster(cluster)
        )
        live = [
            d for d in cluster.analyze(BROKEN_SCRIPT) if d.code.startswith("FG1")
        ]
        assert [
            (d.code, d.line, d.column, d.message) for d in cli_diagnostics
        ] == [(d.code, d.line, d.column, d.message) for d in live]
