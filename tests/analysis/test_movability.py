"""Tests for the movability checker, source mode and live mode."""

import threading

from repro.analysis import check_anchor_live, check_complet_source
from repro.complet.anchor import Anchor


def codes(source):
    return [d.code for d in check_complet_source(source)]


CLEAN = '''
from repro.complet.anchor import Anchor

class Counter_(Anchor):
    def __init__(self, start=0):
        self.value = start

    def increment(self):
        self.value += 1
        return self.value
'''


class TestSourceMode:
    def test_clean_anchor_has_no_diagnostics(self):
        assert codes(CLEAN) == []

    def test_python_syntax_error_is_fg100(self):
        out = check_complet_source("def broken(:\n    pass\n", file="bad.py")
        assert [d.code for d in out] == ["FG100"]
        assert out[0].file == "bad.py"

    def test_non_anchor_classes_are_ignored(self):
        source = (
            "import threading\n"
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
        )
        assert codes(source) == []

    def test_fg301_socket_and_lock_fields(self):
        source = (
            "import socket\nimport threading\n"
            "from repro.complet.anchor import Anchor\n"
            "class Bad_(Anchor):\n"
            "    def __init__(self):\n"
            "        self.sock = socket.socket()\n"
            "        self.lock = threading.Lock()\n"
        )
        assert codes(source) == ["FG301", "FG301"]

    def test_fg301_open_file_field(self):
        source = (
            "from repro.complet.anchor import Anchor\n"
            "class Bad_(Anchor):\n"
            "    def start(self):\n"
            '        self.log = open("x.txt", "w")\n'
        )
        out = check_complet_source(source)
        assert [d.code for d in out] == ["FG301"]
        assert "Bad_.start" in out[0].message

    def test_fg301_respects_import_aliases(self):
        source = (
            "import threading as thr\n"
            "from repro.complet.anchor import Anchor\n"
            "class Bad_(Anchor):\n"
            "    def __init__(self):\n"
            "        self.lock = thr.Lock()\n"
        )
        assert codes(source) == ["FG301"]

    def test_fg302_local_anchor_instantiation(self):
        source = (
            "from repro.complet.anchor import Anchor\n"
            "class Helper_(Anchor):\n"
            "    pass\n"
            "class Owner_(Anchor):\n"
            "    def __init__(self):\n"
            "        self.helper = Helper_()\n"
        )
        out = check_complet_source(source)
        assert [d.code for d in out] == ["FG302"]
        assert "stub" in out[0].message

    def test_fg302_transitive_anchor_subclass(self):
        source = (
            "from repro.complet.anchor import Anchor\n"
            "class Base_(Anchor):\n"
            "    pass\n"
            "class Leaf_(Base_):\n"
            "    pass\n"
            "class Owner_(Anchor):\n"
            "    def setup(self):\n"
            "        self.leaf = Leaf_()\n"
        )
        assert codes(source) == ["FG302"]

    def test_fg303_lambda_field(self):
        source = (
            "from repro.complet.anchor import Anchor\n"
            "class Bad_(Anchor):\n"
            "    def __init__(self):\n"
            "        self.fn = lambda x: x + 1\n"
        )
        assert codes(source) == ["FG303"]

    def test_fg303_method_local_function(self):
        source = (
            "from repro.complet.anchor import Anchor\n"
            "class Bad_(Anchor):\n"
            "    def __init__(self):\n"
            "        def helper():\n"
            "            return 1\n"
            "        self.fn = helper\n"
        )
        out = check_complet_source(source)
        assert [d.code for d in out] == ["FG303"]
        assert "helper" in out[0].message

    def test_diagnostics_carry_line_numbers(self):
        source = (
            "import threading\n"
            "from repro.complet.anchor import Anchor\n"
            "class Bad_(Anchor):\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
        )
        (d,) = check_complet_source(source, file="m.py")
        assert d.line == 5


class _LiveProbe_(Anchor):
    """Built directly (never installed) so live mode can be tested in isolation."""

    def __init__(self):
        self.name = "ok"


class TestLiveMode:
    def test_clean_instance(self):
        anchor = _LiveProbe_()
        assert check_anchor_live(anchor) == []

    def test_unpicklable_field(self):
        anchor = _LiveProbe_()
        anchor.lock = threading.Lock()
        out = check_anchor_live(anchor, hosted_at="alpha")
        assert [d.code for d in out] == ["FG301"]
        assert "'lock'" in out[0].message

    def test_direct_anchor_field(self):
        anchor = _LiveProbe_()
        anchor.buddy = _LiveProbe_()
        assert [d.code for d in check_anchor_live(anchor)] == ["FG302"]

    def test_lambda_field(self):
        anchor = _LiveProbe_()
        anchor.fn = lambda: 1
        assert [d.code for d in check_anchor_live(anchor)] == ["FG303"]

    def test_private_fields_are_skipped(self):
        anchor = _LiveProbe_()
        anchor._runtime_lock = threading.Lock()
        assert check_anchor_live(anchor) == []
