"""Tests for the MovePlan IR and its batch checker (FG405–FG409)."""

import pytest

from repro.analysis.interaction import coerce_scripts, script_set_effects
from repro.analysis.plan import MovePlan, PlannedMove, check_plan
from repro.analysis.script_check import TopologyInfo

TOPO = TopologyInfo(
    cores=frozenset({"c1", "c2", "c3"}),
    complets=frozenset({"w", "v"}),
)


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestJsonRoundTrip:
    def test_mapping_shape_round_trips(self):
        plan = MovePlan(
            moves=(
                PlannedMove("w", "c2", source="c1"),
                PlannedMove("v", "c3"),
            ),
            name="evacuate",
            locations={"w": "c1"},
        )
        again = MovePlan.from_json(plan.to_json())
        assert again == plan
        assert again.locations == {"w": "c1"}

    def test_bare_list_and_aliases(self):
        plan = MovePlan.from_json(
            '[{"complet": "w", "to": "c2", "from": "c1"}]', name="ops.json"
        )
        assert plan.name == "ops.json"
        assert plan.moves == (PlannedMove("w", "c2", source="c1"),)

    def test_bad_step_raises(self):
        with pytest.raises(ValueError):
            MovePlan.from_json('[{"complet": "w"}]')
        with pytest.raises(ValueError):
            MovePlan.from_json('"just a string"')


class TestUnsatisfiable:
    def test_unknown_destination_is_an_error(self):
        plan = MovePlan((PlannedMove("w", "nowhere"),))
        diagnostics = check_plan(plan, TOPO)
        assert codes(diagnostics) == ["FG405"]
        assert diagnostics[0].severity.value == "error"
        assert diagnostics[0].line == 1  # 1-based step index

    def test_unknown_complet_is_a_warning(self):
        plan = MovePlan((PlannedMove("ghost", "c2"),))
        diagnostics = check_plan(plan, TOPO)
        assert codes(diagnostics) == ["FG405"]
        assert diagnostics[0].severity.value == "warning"

    def test_source_contradicting_the_simulated_layout(self):
        plan = MovePlan(
            (
                PlannedMove("w", "c2"),
                PlannedMove("w", "c3", source="c1"),  # it is at c2 now
            ),
            locations={"w": "c1"},
        )
        diagnostics = check_plan(plan, TOPO)
        fg405 = [d for d in diagnostics if d.code == "FG405"]
        assert len(fg405) == 1
        assert "is at 'c2'" in fg405[0].message
        assert fg405[0].line == 2

    def test_no_topology_skips_existence_checks(self):
        plan = MovePlan((PlannedMove("ghost", "nowhere"),))
        assert check_plan(plan) == []


class TestConflictsAndPreemption:
    def test_conflicting_destinations_are_fg406(self):
        plan = MovePlan(
            (PlannedMove("w", "c2"), PlannedMove("w", "c3")),
            locations={"w": "c1"},
        )
        diagnostics = check_plan(plan, TOPO)
        assert codes(diagnostics) == ["FG406"]

    def test_self_preempting_plan_is_rejected(self):
        # The acceptance-criteria plan: step 2 returns w to the Core
        # step 1 deliberately vacated.
        plan = MovePlan(
            (PlannedMove("w", "c2", source="c1"), PlannedMove("w", "c1")),
            name="self-preempt",
            locations={"w": "c1"},
        )
        diagnostics = check_plan(plan, TOPO)
        assert codes(diagnostics) == ["FG407"]
        assert diagnostics[0].severity.value == "error"
        assert "deliberately vacated" in diagnostics[0].message
        assert diagnostics[0].file == "self-preempt"

    def test_noop_step_is_informational(self):
        plan = MovePlan((PlannedMove("w", "c1"),), locations={"w": "c1"})
        diagnostics = check_plan(plan, TOPO)
        assert codes(diagnostics) == ["FG408"]
        assert diagnostics[0].severity.value == "info"

    def test_clean_plan_has_no_diagnostics(self):
        plan = MovePlan(
            (PlannedMove("w", "c2", source="c1"), PlannedMove("v", "c3")),
            locations={"w": "c1", "v": "c1"},
        )
        assert check_plan(plan, TOPO) == []


class TestRuleFights:
    def effects(self, *sources):
        return script_set_effects(coerce_scripts(list(sources)))

    def test_plan_fighting_an_arrival_rule_is_fg409(self):
        effects = self.effects(
            'on completArrived listenAt [c2] do move "w" to "c3" end'
        )
        plan = MovePlan((PlannedMove("w", "c2"),), locations={"w": "c1"})
        diagnostics = check_plan(plan, TOPO, effects=effects)
        assert codes(diagnostics) == ["FG409"]
        assert "immediately override" in diagnostics[0].message

    def test_rule_listening_elsewhere_does_not_fight(self):
        effects = self.effects(
            'on completArrived listenAt [c3] do move "w" to "c1" end'
        )
        plan = MovePlan((PlannedMove("w", "c2"),), locations={"w": "c1"})
        assert check_plan(plan, TOPO, effects=effects) == []

    def test_rule_agreeing_with_the_plan_does_not_fight(self):
        effects = self.effects(
            'on completArrived listenAt [c2] do move "w" to "c2" end'
        )
        plan = MovePlan((PlannedMove("w", "c2"),), locations={"w": "c1"})
        assert check_plan(plan, TOPO, effects=effects) == []


class TestPaperScripts:
    def test_section_4_3_example_scripts_pass_with_a_plan(self):
        # The paper's §4.3 policy (evacuate-on-shutdown + colocate-on-rate)
        # must not fight a straightforward evacuation plan.
        from benchmarks.bench_script import PAPER_SCRIPT

        effects = script_set_effects(
            coerce_scripts([(PAPER_SCRIPT, "paper-4.3")])
        )
        assert effects  # the script parses and has rules
        plan = MovePlan(
            (PlannedMove("w", "c2", source="c1"),),
            locations={"w": "c1"},
        )
        assert check_plan(plan, TOPO, effects=effects) == []
