"""Tests for ``python -m repro.analysis``: modes, exit codes, reporters."""

import json

from repro.analysis.cli import extract_embedded_scripts, iter_target_files, main

BAD_SCRIPT = 'on timer() do\n log "no interval"\nend\n'

BAD_COMPLET = (
    "import threading\n"
    "from repro.complet.anchor import Anchor\n"
    "\n"
    "class Bad_(Anchor):\n"
    "    def __init__(self):\n"
    "        self.lock = threading.Lock()\n"
    "\n"
    'EMBEDDED_SCRIPT = """\\\n'
    "on completArived do\n"
    ' log "x"\n'
    'end\n"""\n'
)


class TestTargets:
    def test_directories_walk_recursively(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.fgs").write_text("x")
        (tmp_path / "sub" / "b.py").write_text("x")
        (tmp_path / "sub" / "c.txt").write_text("ignored")
        names = {p.name for p in iter_target_files([str(tmp_path)])}
        assert names == {"a.fgs", "b.py"}

    def test_files_pass_through(self, tmp_path):
        f = tmp_path / "x.fgs"
        f.write_text("x")
        assert iter_target_files([str(f)]) == [f]


class TestEmbeddedExtraction:
    def test_finds_script_constants_with_line_mapping(self):
        scripts = extract_embedded_scripts(BAD_COMPLET)
        assert len(scripts) == 1
        name, first_line, text, exact = scripts[0]
        assert name == "EMBEDDED_SCRIPT"
        assert text.startswith("on completArived")
        # Line 9 of the file is "on completArived do".
        assert (first_line, exact) == (9, True)

    def test_ignores_non_script_constants(self):
        assert extract_embedded_scripts('GREETING = "hi"\n') == []

    def test_ignores_script_named_constants_without_rule_shape(self):
        # The name matches but the value is not a layout script.
        assert extract_embedded_scripts('SCRIPT_SUFFIX = ".fgs"\n') == []

    def test_escaped_newline_strings_collapse_to_the_assignment_line(self):
        source = "x = 1\nPOLICY_SCRIPT = 'on shutdown do\\n log \"b\"\\nend'\n"
        ((_, first_line, _, exact),) = extract_embedded_scripts(source)
        assert (first_line, exact) == (2, False)

    def test_unparsable_python_yields_nothing(self):
        assert extract_embedded_scripts("def broken(:\n") == []


class TestMain:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.fgs").write_text('on shutdown firedby $c do\n log "x"\nend\n')
        assert main([str(tmp_path)]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_script_errors_exit_one(self, tmp_path, capsys):
        f = tmp_path / "bad.fgs"
        f.write_text(BAD_SCRIPT)
        assert main([str(f)]) == 1
        out = capsys.readouterr().out
        assert "FG109" in out and str(f) in out

    def test_complet_and_embedded_script_diagnostics(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text(BAD_COMPLET)
        assert main([str(f)]) == 1
        out = capsys.readouterr().out
        assert "FG301" in out  # the lock field
        assert "FG103" in out  # the embedded script's typo
        # The embedded diagnostic is remapped to the Python file's line 9.
        assert f"{f}:9:" in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.fgs")]) == 2

    def test_json_reporter(self, tmp_path, capsys):
        f = tmp_path / "bad.fgs"
        f.write_text(BAD_SCRIPT)
        assert main(["--json", str(f)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [d["code"] for d in payload] == ["FG109"]
        assert payload[0]["file"] == str(f)

    def test_strict_promotes_warnings_to_failure(self, tmp_path, capsys):
        f = tmp_path / "warn.fgs"
        rule = 'on shutdown firedby $c do\n move completsIn $c to "safe"\nend\n'
        f.write_text(rule + rule)  # duplicate rule: FG107 warning
        assert main([str(f)]) == 0
        assert main(["--strict", str(f)]) == 1

    def test_cluster_spec_enables_identifier_resolution(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"cores": ["c1"], "complets": []}))
        f = tmp_path / "s.fgs"
        f.write_text('on timer(5) do\n move "x" to "c9"\nend\n')
        assert main([str(f)]) == 0  # no topology, no FG104
        assert main(["--cluster-spec", str(spec), str(f)]) == 1

    def test_args_bound_checks(self, tmp_path, capsys):
        f = tmp_path / "s.fgs"
        f.write_text("$a = %4\n")
        assert main([str(f)]) == 0
        assert main(["--args", "2", str(f)]) == 1

    def test_suppression_comment_silences_a_line(self, tmp_path, capsys):
        f = tmp_path / "s.fgs"
        f.write_text("on timer() do  # fargo: ignore[FG109]\n log \"x\"\nend\n")
        assert main([str(f)]) == 0

    def test_suppression_of_other_code_does_not_silence(self, tmp_path, capsys):
        f = tmp_path / "s.fgs"
        f.write_text("on timer() do  # fargo: ignore[FG104]\n log \"x\"\nend\n")
        assert main([str(f)]) == 1


class TestUnusedSuppressionReporting:
    def test_unused_suppression_is_fg001_but_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "s.fgs"
        f.write_text('on timer(5) do  # fargo: ignore[FG109]\n log "x"\nend\n')
        assert main([str(f)]) == 0
        assert "FG001" in capsys.readouterr().out

    def test_strict_escalates_fg001_to_a_failing_warning(self, tmp_path, capsys):
        f = tmp_path / "s.fgs"
        f.write_text('on timer(5) do  # fargo: ignore[FG109]\n log "x"\nend\n')
        assert main(["--strict", str(f)]) == 1
        assert "warning FG001" in capsys.readouterr().out

    def test_used_suppression_is_not_reported(self, tmp_path, capsys):
        f = tmp_path / "s.fgs"
        f.write_text("on timer() do  # fargo: ignore[FG109]\n log \"x\"\nend\n")
        assert main([str(f)]) == 0
        assert "FG001" not in capsys.readouterr().out


class TestSarif:
    def test_sarif_reporter(self, tmp_path, capsys):
        f = tmp_path / "bad.fgs"
        f.write_text(BAD_SCRIPT)
        assert main(["--sarif", str(f)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        results = document["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["FG109"]
        uri = results[0]["locations"][0]["physicalLocation"]["artifactLocation"]
        assert uri["uri"] == str(f)


class TestInteractionAcrossFiles:
    def test_two_script_files_race_as_fg401(self, tmp_path, capsys):
        (tmp_path / "app.fgs").write_text(
            'on completArrived listenAt [a] do move "w" to "d" end\n'
        )
        (tmp_path / "ops.fgs").write_text(
            'on completArrived listenAt [b] do move "w" to "e" end\n'
        )
        assert main([str(tmp_path)]) == 0  # FG401 is a warning
        out = capsys.readouterr().out
        assert "FG401" in out

    def test_single_file_runs_no_interaction_pass(self, tmp_path, capsys):
        (tmp_path / "app.fgs").write_text(
            'on completArrived listenAt [a] do move "w" to "d" end\n'
        )
        assert main([str(tmp_path)]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_interaction_findings_respect_suppressions(self, tmp_path, capsys):
        (tmp_path / "app.fgs").write_text(
            'on completArrived listenAt [a] do move "w" to "d" end\n'
        )
        (tmp_path / "ops.fgs").write_text(
            'on completArrived listenAt [b] do move "w" to "e" end'
            "  # fargo: ignore[FG401]\n"
        )
        assert main([str(tmp_path)]) == 0
        assert "FG401" not in capsys.readouterr().out


class TestPlanChecking:
    def test_self_preempting_plan_fails(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "locations": {"w": "c1"},
            "moves": [
                {"complet": "w", "to": "c2", "from": "c1"},
                {"complet": "w", "to": "c1"},
            ],
        }))
        assert main(["--plan", str(plan)]) == 1
        out = capsys.readouterr().out
        assert "FG407" in out and str(plan) in out

    def test_plan_checked_against_collected_scripts(self, tmp_path, capsys):
        (tmp_path / "app.fgs").write_text(
            'on completArrived listenAt [c2] do move "w" to "c3" end\n'
        )
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps([{"complet": "w", "to": "c2"}]))
        assert main(["--plan", str(plan), str(tmp_path / "app.fgs")]) == 0
        assert "FG409" in capsys.readouterr().out

    def test_clean_plan_alone_is_ok(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps([{"complet": "w", "to": "c2"}]))
        assert main(["--plan", str(plan)]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_bad_plan_exits_two(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('[{"complet": "w"}]')
        assert main(["--plan", str(plan)]) == 2
        assert main(["--plan", str(tmp_path / "missing.json")]) == 2

    def test_no_paths_and_no_plan_is_a_usage_error(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
