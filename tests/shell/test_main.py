"""Tests for the interactive shell entry point's demo cluster."""

from repro.shell.__main__ import build_demo_cluster
from repro.shell.shell import FarGoShell


class TestDemoCluster:
    def test_default_population(self):
        cluster = build_demo_cluster(["hq", "edge1", "edge2"])
        assert len(cluster.complets_at("hq")) == 2
        assert len(cluster.complets_at("edge1")) == 2
        assert cluster["hq"].naming.names() == ["client", "server"]

    def test_single_core_topology(self):
        cluster = build_demo_cluster(["solo"])
        assert len(cluster.complets_at("solo")) == 4

    def test_shell_drives_demo(self):
        cluster = build_demo_cluster(["hq", "edge1"])
        shell = FarGoShell(cluster, home="hq")
        out = shell.execute("layout")
        assert "Client" in out and "DataSource" in out
        client_id = next(
            cid for cid in cluster.complets_at("edge1") if "Client" in cid
        )
        assert "moved" in shell.execute(f"move {client_id} hq")

    def test_loop_scriptable(self):
        """The REPL is drivable with injected IO (no real terminal)."""
        cluster = build_demo_cluster(["hq", "edge1"])
        shell = FarGoShell(cluster, home="hq")
        lines = iter(["cores", "exit"])
        outputs = []
        shell.loop(input_fn=lambda prompt: next(lines), print_fn=outputs.append)
        assert any("hq" in str(o) for o in outputs)
