"""Tests for the mobile shell complet."""

import pytest

from repro.shell.complet import ShellComplet
from repro.cluster.workload import Counter, Echo
from tests.anchors import Holder


@pytest.fixture
def shell(cluster3):
    return ShellComplet(_core=cluster3["alpha"])


class TestBasicCommands:
    def test_whereami(self, cluster3, shell):
        assert shell.execute("whereami") == "alpha"

    def test_complets_local_and_remote(self, cluster3, shell):
        Echo("x", _core=cluster3["beta"], _at="beta")
        assert "ShellComplet" in shell.execute("complets")
        assert "Echo" in shell.execute("complets beta")

    def test_snapshot(self, cluster3, shell):
        Echo("x", _core=cluster3["beta"], _at="beta")
        out = shell.execute("snapshot beta")
        assert "core beta: 1 complets" in out

    def test_move_searches_hosts(self, cluster3, shell):
        counter = Counter(0, _core=cluster3["gamma"], _at="gamma")
        cid = str(counter._fargo_target_id)
        out = shell.execute(f"move {cid} beta")
        assert "moved" in out
        assert cluster3.locate(counter) == "beta"

    def test_move_unknown(self, cluster3, shell):
        assert "error" in shell.execute("move ghost/c1:X beta")

    def test_refs_and_retype(self, cluster3, shell):
        echo = Echo("x", _core=cluster3["beta"], _at="beta")
        holder = Holder(echo, _core=cluster3["beta"], _at="beta")
        hid = str(holder._fargo_target_id)
        eid = str(echo._fargo_target_id)
        assert "link" in shell.execute(f"refs beta {hid}")
        assert "pull" in shell.execute(f"retype beta {hid} {eid} pull")

    def test_profile(self, cluster3, shell):
        Echo("x", _core=cluster3["beta"], _at="beta")
        assert "completLoad@beta = 1" in shell.execute("profile beta completLoad")

    def test_services(self, cluster3, shell):
        assert "invocationRate" in shell.execute("services")

    def test_collect(self, cluster3, shell):
        assert "collected" in shell.execute("collect beta")

    def test_errors_reported_not_raised(self, cluster3, shell):
        assert "unknown command" in shell.execute("dance")
        assert shell.execute("") == ""
        assert "error" in shell.execute("profile beta")  # missing args


class TestMobility:
    def test_goto_moves_the_shell(self, cluster3, shell):
        shell.execute("goto beta")
        cluster3.drain()
        assert cluster3.locate(shell) == "beta"
        assert shell.execute("whereami") == "beta"

    def test_history_travels_with_the_shell(self, cluster3, shell):
        shell.execute("complets")
        shell.execute("goto gamma")
        cluster3.drain()
        history = shell.get_history()
        assert "complets" in history
        assert "goto gamma" in history

    def test_admin_from_new_location(self, cluster3, shell):
        """After moving, commands run against the new hosting Core."""
        Echo("x", _core=cluster3["gamma"], _at="gamma")
        shell.execute("goto gamma")
        cluster3.drain()
        local = shell.execute("complets")
        assert "Echo" in local and "ShellComplet" in local

    def test_third_party_can_move_the_shell(self, cluster3, shell):
        cluster3.move(shell, "beta")
        assert shell.execute("whereami") == "beta"
