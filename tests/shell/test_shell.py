"""Tests for the FarGo administration shell."""

import pytest

from repro.shell.shell import FarGoShell, _parse_params
from repro.cluster.workload import Client, Counter, Echo, Server
from tests.anchors import Holder


@pytest.fixture
def shell(cluster3):
    return FarGoShell(cluster3, home="alpha")


class TestBasicCommands:
    def test_cores(self, cluster3, shell):
        out = shell.execute("cores")
        assert "alpha" in out and "beta" in out and "gamma" in out
        assert "up" in out

    def test_cores_shows_down(self, cluster3, shell):
        cluster3.shutdown_core("gamma")
        assert "down" in shell.execute("cores")

    def test_complets_lists_all(self, cluster3, shell):
        Echo("x", _core=cluster3["alpha"])
        Echo("y", _core=cluster3["beta"], _at="beta")
        out = shell.execute("complets")
        assert "alpha/c1:Echo" in out
        assert "beta/c1:Echo" in out

    def test_complets_filtered_by_core(self, cluster3, shell):
        Echo("x", _core=cluster3["alpha"])
        out = shell.execute("complets beta")
        assert "alpha" not in out

    def test_empty_complets(self, shell):
        assert shell.execute("complets") == "(no complets)"

    def test_layout_renders(self, cluster3, shell):
        Echo("x", _core=cluster3["alpha"])
        out = shell.execute("layout")
        assert "FarGo layout" in out
        assert "core alpha" in out

    def test_help(self, shell):
        out = shell.execute("help")
        assert "move" in out and "script" in out

    def test_empty_line(self, shell):
        assert shell.execute("   ") == ""

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute("frobnicate")

    def test_bad_arguments_reported(self, shell):
        assert "error" in shell.execute("move onlyone")


class TestManipulation:
    def test_move(self, cluster3, shell):
        counter = Counter(0, _core=cluster3["alpha"])
        cid = str(counter._fargo_target_id)
        out = shell.execute(f"move {cid} beta")
        assert "moved" in out
        assert cluster3.locate(counter) == "beta"

    def test_move_unknown_complet(self, shell):
        assert "error" in shell.execute("move ghost/c9:Ghost beta")

    def test_refs_and_retype(self, cluster3, shell):
        echo = Echo("x", _core=cluster3["alpha"])
        holder = Holder(echo, _core=cluster3["alpha"])
        hid = str(holder._fargo_target_id)
        eid = str(echo._fargo_target_id)
        out = shell.execute(f"refs alpha {hid}")
        assert "link" in out and eid in out
        out = shell.execute(f"retype alpha {hid} {eid} pull")
        assert "pull" in out
        assert "pull" in shell.execute(f"refs alpha {hid}")

    def test_shutdown(self, cluster3, shell):
        out = shell.execute("shutdown gamma")
        assert "shut down" in out
        assert not cluster3["gamma"].is_running

    def test_collect(self, cluster3, shell):
        assert "collected" in shell.execute("collect")

    def test_advance(self, cluster3, shell):
        before = cluster3.now
        out = shell.execute("advance 5")
        assert out.startswith("t = ")
        assert cluster3.now == pytest.approx(before + 5.0)


class TestMonitoringCommands:
    def test_profile(self, cluster3, shell):
        Echo("x", _core=cluster3["beta"], _at="beta")
        out = shell.execute("profile beta completLoad")
        assert "= 1" in out

    def test_profile_with_params(self, cluster3, shell):
        out = shell.execute("profile alpha linkBytes peer=beta")
        assert "linkBytes" in out

    def test_watch(self, cluster3, shell):
        out = shell.execute("watch beta completLoad > 2")
        assert "watch #" in out
        assert cluster3["beta"].monitor.active_watches() == 1

    def test_services(self, cluster3, shell):
        out = shell.execute("services beta")
        assert "completLoad" in out
        assert "invocationRate" in out

    def test_feed_shows_movements(self, cluster3, shell):
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        out = shell.execute("feed")
        assert "completArrived" in out

    def test_feed_empty(self, shell):
        assert shell.execute("feed") == "(no events)"


class TestScriptCommand:
    def test_inline_script(self, cluster3, shell):
        out = shell.execute(
            "script on shutdown firedby $core do move completsIn $core to alpha end"
        )
        assert "1 rules" in out
        Echo("x", _core=cluster3["beta"], _at="beta")
        cluster3.shutdown_core("beta")
        assert cluster3.complets_at("alpha")

    def test_script_from_file(self, cluster3, shell, tmp_path):
        path = tmp_path / "layout.fgs"
        path.write_text('on shutdown firedby $core do log $core end')
        out = shell.execute(f"script @{path}")
        assert "1 rules" in out
        cluster3.shutdown_core("beta")
        assert shell.engine.log == ["beta"]

    def test_script_syntax_error_reported(self, shell):
        assert "error" in shell.execute("script on do end")


class TestParamParsing:
    def test_parse_params(self):
        assert _parse_params(["a=1", "b=x"]) == {"a": "1", "b": "x"}

    def test_parse_params_rejects_bare(self):
        with pytest.raises(ValueError):
            _parse_params(["novalue"])


class TestHistoryCommand:
    def test_history_sparkline(self, cluster3, shell):
        Echo("x", _core=cluster3["beta"], _at="beta")
        shell.execute("history beta completLoad")  # starts the profile
        shell.execute("advance 5")
        out = shell.execute("history beta completLoad")
        assert "completLoad@beta" in out
        assert "[1 .. 1]" in out

    def test_history_appears_in_help(self, shell):
        assert "history" in shell.execute("help")
