"""Tests for the FarGo administration shell."""

import pytest

from repro.shell.shell import FarGoShell, _parse_params
from repro.cluster.workload import Client, Counter, Echo, Server
from tests.anchors import Holder


@pytest.fixture
def shell(cluster3):
    return FarGoShell(cluster3, home="alpha")


class TestBasicCommands:
    def test_cores(self, cluster3, shell):
        out = shell.execute("cores")
        assert "alpha" in out and "beta" in out and "gamma" in out
        assert "up" in out

    def test_cores_shows_down(self, cluster3, shell):
        cluster3.shutdown_core("gamma")
        assert "down" in shell.execute("cores")

    def test_complets_lists_all(self, cluster3, shell):
        Echo("x", _core=cluster3["alpha"])
        Echo("y", _core=cluster3["beta"], _at="beta")
        out = shell.execute("complets")
        assert "alpha/c1:Echo" in out
        assert "beta/c1:Echo" in out

    def test_complets_filtered_by_core(self, cluster3, shell):
        Echo("x", _core=cluster3["alpha"])
        out = shell.execute("complets beta")
        assert "alpha" not in out

    def test_empty_complets(self, shell):
        assert shell.execute("complets") == "(no complets)"

    def test_layout_renders(self, cluster3, shell):
        Echo("x", _core=cluster3["alpha"])
        out = shell.execute("layout")
        assert "FarGo layout" in out
        assert "core alpha" in out

    def test_help(self, shell):
        out = shell.execute("help")
        assert "move" in out and "script" in out

    def test_empty_line(self, shell):
        assert shell.execute("   ") == ""

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute("frobnicate")

    def test_bad_arguments_reported(self, shell):
        assert "error" in shell.execute("move onlyone")


class TestManipulation:
    def test_move(self, cluster3, shell):
        counter = Counter(0, _core=cluster3["alpha"])
        cid = str(counter._fargo_target_id)
        out = shell.execute(f"move {cid} beta")
        assert "moved" in out
        assert cluster3.locate(counter) == "beta"

    def test_move_unknown_complet(self, shell):
        assert "error" in shell.execute("move ghost/c9:Ghost beta")

    def test_refs_and_retype(self, cluster3, shell):
        echo = Echo("x", _core=cluster3["alpha"])
        holder = Holder(echo, _core=cluster3["alpha"])
        hid = str(holder._fargo_target_id)
        eid = str(echo._fargo_target_id)
        out = shell.execute(f"refs alpha {hid}")
        assert "link" in out and eid in out
        out = shell.execute(f"retype alpha {hid} {eid} pull")
        assert "pull" in out
        assert "pull" in shell.execute(f"refs alpha {hid}")

    def test_shutdown(self, cluster3, shell):
        out = shell.execute("shutdown gamma")
        assert "shut down" in out
        assert not cluster3["gamma"].is_running

    def test_collect(self, cluster3, shell):
        assert "collected" in shell.execute("collect")

    def test_advance(self, cluster3, shell):
        before = cluster3.now
        out = shell.execute("advance 5")
        assert out.startswith("t = ")
        assert cluster3.now == pytest.approx(before + 5.0)


class TestMonitoringCommands:
    def test_profile(self, cluster3, shell):
        Echo("x", _core=cluster3["beta"], _at="beta")
        out = shell.execute("profile beta completLoad")
        assert "= 1" in out

    def test_profile_with_params(self, cluster3, shell):
        out = shell.execute("profile alpha linkBytes peer=beta")
        assert "linkBytes" in out

    def test_watch(self, cluster3, shell):
        out = shell.execute("watch beta completLoad > 2")
        assert "watch #" in out
        assert cluster3["beta"].monitor.active_watches() == 1

    def test_services(self, cluster3, shell):
        out = shell.execute("services beta")
        assert "completLoad" in out
        assert "invocationRate" in out

    def test_feed_shows_movements(self, cluster3, shell):
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        out = shell.execute("feed")
        assert "completArrived" in out

    def test_feed_empty(self, shell):
        assert shell.execute("feed") == "(no events)"


class TestStoreCommand:
    @pytest.fixture
    def store_cluster(self):
        from repro.cluster.cluster import Cluster
        from repro.cluster.workload import DataSource

        cluster = Cluster(["alpha", "beta"], store="memory")
        source = DataSource(256 * 1024, _core=cluster["alpha"])
        cluster.move(source, "beta")
        yield cluster
        cluster.close()

    def test_store_disabled(self, cluster3, shell):
        assert "disabled" in shell.execute("store")
        assert "disabled" in shell.execute("store beta")

    def test_cluster_wide_view(self, store_cluster):
        shell = FarGoShell(store_cluster, home="alpha")
        out = shell.execute("store")
        assert "memory store:" in out
        assert "client at alpha:" in out and "client at beta:" in out
        assert "offloads=1" in out  # the moved payload went through once

    def test_single_core_view(self, store_cluster):
        shell = FarGoShell(store_cluster, home="alpha")
        out = shell.execute("store beta")
        assert out.startswith("client at beta:")
        assert "resolves=1" in out
        assert "alpha" not in out

    def test_entries_render_with_refcounts(self, store_cluster):
        from repro.store import StoreClient

        # Park an unreleased entry so the listing has a row to show.
        client = StoreClient(store_cluster.store, threshold=1)
        proxy = client.offload(b"held" * 100)
        shell = FarGoShell(store_cluster, home="alpha")
        out = shell.execute("store")
        assert proxy.key.digest[:10] in out
        assert "refs=1" in out

    def test_help_lists_store(self, shell):
        assert "store" in shell.execute("help")


class TestScriptCommand:
    def test_inline_script(self, cluster3, shell):
        out = shell.execute(
            "script on shutdown firedby $core do move completsIn $core to alpha end"
        )
        assert "1 rules" in out
        Echo("x", _core=cluster3["beta"], _at="beta")
        cluster3.shutdown_core("beta")
        assert cluster3.complets_at("alpha")

    def test_script_from_file(self, cluster3, shell, tmp_path):
        path = tmp_path / "layout.fgs"
        path.write_text('on shutdown firedby $core do log $core end')
        out = shell.execute(f"script @{path}")
        assert "1 rules" in out
        cluster3.shutdown_core("beta")
        assert shell.engine.log == ["beta"]

    def test_script_syntax_error_reported(self, shell):
        assert "error" in shell.execute("script on do end")


class TestParamParsing:
    def test_parse_params(self):
        assert _parse_params(["a=1", "b=x"]) == {"a": "1", "b": "x"}

    def test_parse_params_rejects_bare(self):
        with pytest.raises(ValueError):
            _parse_params(["novalue"])


class TestHistoryCommand:
    def test_history_sparkline(self, cluster3, shell):
        Echo("x", _core=cluster3["beta"], _at="beta")
        shell.execute("history beta completLoad")  # starts the profile
        shell.execute("advance 5")
        out = shell.execute("history beta completLoad")
        assert "completLoad@beta" in out
        assert "[1 .. 1]" in out

    def test_history_appears_in_help(self, shell):
        assert "history" in shell.execute("help")


class TestRecoveryCommands:
    @pytest.fixture
    def recovering(self, cluster3):
        cluster3.enable_recovery(auto_recover=False)
        return FarGoShell(cluster3, home="alpha")

    def test_snapshot_and_restore(self, cluster3, recovering):
        counter = Counter(40, _core=cluster3["alpha"], _at="beta")
        counter.increment(by=2)
        complet_id = str(counter._fargo_target_id)
        out = recovering.execute(f"snapshot {complet_id}")
        assert "taken at beta" in out and "bytes" in out
        out = recovering.execute(f"restore {complet_id} gamma")
        assert "restored" in out and "at gamma" in out
        copies = [c for c in cluster3.complets_at("gamma") if "Counter" in c]
        assert len(copies) == 1

    def test_restore_keep_identity_after_crash(self, cluster3, recovering):
        counter = Counter(40, _core=cluster3["alpha"], _at="beta")
        counter.increment(by=2)
        complet_id = str(counter._fargo_target_id)
        recovering.execute(f"snapshot {complet_id}")
        cluster3.network.set_node_down("beta")
        out = recovering.execute(f"restore {complet_id} alpha keep")
        assert f"restored {complet_id} as {complet_id}" in out
        assert counter.read() == 42  # the old reference works again

    def test_restore_keep_refused_while_alive(self, cluster3, recovering):
        counter = Counter(0, _core=cluster3["alpha"])
        complet_id = str(counter._fargo_target_id)
        recovering.execute(f"snapshot {complet_id}")
        assert "error" in recovering.execute(f"restore {complet_id} keep")

    def test_snapshot_unknown_complet(self, recovering):
        out = recovering.execute("snapshot nope/c9")
        assert "error" in out or "no running Core hosts" in out

    def test_restore_without_snapshot(self, recovering):
        assert "no snapshot held" in recovering.execute("restore ghost/c9")

    def test_failures_shows_detector_verdicts(self, cluster3, recovering):
        cluster3.advance(1.0)  # first heartbeat round populates the view
        out = recovering.execute("failures")
        assert "detector at alpha:" in out
        assert "beta" in out and "alive" in out

    def test_failures_without_recovery(self, shell):
        assert shell.execute("failures") == "(no failure activity)"

    def test_failures_shows_injections_and_recovery(self, cluster3, recovering):
        from repro.cluster.failures import FailureInjector
        from repro.recovery import CheckpointPolicy

        inject = FailureInjector(cluster3)
        recovering.attach_injector(inject)
        counter = Counter(40, _core=cluster3["alpha"], _at="gamma")
        cluster3.checkpoints.protect(counter, CheckpointPolicy(interval=1.0))
        inject.crash_core_at(2.0, "gamma")
        cluster3.advance(6.0)
        cluster3.recovery.recover_core("gamma")
        out = recovering.execute("failures")
        assert "injections:" in out
        assert "core gamma crashes" in out
        assert "detector at alpha:" in out
        assert "recovery:" in out

    def test_recovery_commands_in_help(self, shell):
        out = shell.execute("help")
        assert "snapshot" in out and "restore" in out and "failures" in out


class TestSupervisorCommand:
    def test_no_supervisor_attached(self, shell):
        assert shell.execute("supervisor") == "(no supervisor attached)"

    def test_renders_children_and_policy(self, cluster3, shell):
        class FakeSupervisor:
            def state(self):
                return {
                    "running": True,
                    "children": {
                        "beta": {
                            "status": "running",
                            "restarts": 2,
                            "recent_restarts": 1,
                            "streak": 0,
                            "last_exit": "signal SIGKILL",
                            "last_verdict": "alive",
                            "last_mttr": 0.42,
                            "next_backoff": 0.2,
                            "escalated_to": [],
                        },
                        "gamma": {
                            "status": "failed",
                            "restarts": 3,
                            "recent_restarts": 3,
                            "streak": 3,
                            "last_exit": "exit 1",
                            "last_verdict": "dead",
                            "last_mttr": None,
                            "next_backoff": 0.8,
                            "escalated_to": ["alpha/c7:Probe"],
                        },
                    },
                    "policy": {
                        "max_restarts": 3,
                        "window": 60.0,
                        "healthy_after": 5.0,
                        "recover": True,
                    },
                }

        cluster3["alpha"].supervisor = FakeSupervisor()
        out = shell.execute("supervisor")
        assert "supervisor at alpha" in out
        assert "budget 3/60s" in out
        assert "restarts 2" in out
        assert "signal SIGKILL" in out
        assert "mttr 0.42s" in out
        assert "escalated to: alpha/c7:Probe" in out

    def test_explicit_core_argument(self, cluster3, shell):
        out = shell.execute("supervisor beta")
        assert out == "(no supervisor attached)"

    def test_supervisor_in_help(self, shell):
        assert "supervisor" in shell.execute("help")
