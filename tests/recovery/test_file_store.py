"""Unit tests for the durable, cross-process checkpoint backend.

:class:`FileCheckpointStore` layers per-complet generation manifests
over the content-keyed :class:`~repro.store.store.FileStore`; these
tests exercise the backend directly, without any Cores: round-trips,
generation retention and blob GC, atomic-manifest torn-write tolerance,
and the cross-handle reads that stand in for cross-process visibility.
"""

from __future__ import annotations

import json

import pytest

from repro.recovery import CheckpointRecord, CheckpointStore, FileCheckpointStore
from repro.util.ids import CompletId


def cid(serial: int = 1, type_name: str = "Probe") -> CompletId:
    return CompletId(birth_core="alpha", serial=serial, type_name=type_name)


def record(
    serial: int = 1, data: bytes = b"snapshot-bytes", host: str = "alpha"
) -> CheckpointRecord:
    identity = cid(serial)
    return CheckpointRecord(
        complet_id=identity, data=data, taken_at=1.5, host=host, group=(identity,)
    )


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        store.put(record(data=b"hello"))
        got = store.get(cid())
        assert got is not None
        assert got.data == b"hello"
        assert got.host == "alpha"
        assert got.taken_at == 1.5
        assert got.complet_id == cid()
        assert got.group == (cid(),)

    def test_missing_id_returns_none(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        assert store.get(cid(99)) is None
        assert store.by_str("alpha/c99:Probe") is None

    def test_latest_generation_wins(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        store.put(record(data=b"v1"))
        store.put(record(data=b"v2"))
        store.put(record(data=b"v3"))
        assert store.get(cid()).data == b"v3"

    def test_query_surface_matches_memory_backend(self, tmp_path):
        """Both backends answer the shared CheckpointStore API alike."""
        memory, durable = CheckpointStore(), FileCheckpointStore(tmp_path)
        for store in (memory, durable):
            store.put(record(1))
            store.put(record(2, host="beta"))
        for store in (memory, durable):
            assert len(store) == 2
            assert cid(1) in store
            assert set(map(str, store.ids())) == {"alpha/c1:Probe", "alpha/c2:Probe"}
            assert [r.complet_id for r in store.hosted_at("beta")] == [cid(2)]
            assert store.by_str("alpha/c1:Probe").complet_id == cid(1)

    def test_discard(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        store.put(record(1))
        store.put(record(2))
        store.discard(cid(1))
        assert store.get(cid(1)) is None
        assert cid(1) not in store
        assert store.get(cid(2)) is not None
        assert len(store) == 1


class TestGenerations:
    def test_retention_window_evicts_old_blobs(self, tmp_path):
        store = FileCheckpointStore(tmp_path, keep_generations=2)
        for version in (b"v1", b"v2", b"v3", b"v4"):
            store.put(record(data=version))
        generations = store.generations(cid())
        assert [g["gen"] for g in generations] == [3, 4]
        # The evicted generations' blobs are gone from the blob store.
        assert len(store._blobs) == 2

    def test_identical_snapshot_dedupes_to_one_blob(self, tmp_path):
        """An unchanged complet re-checkpoints to the same blob."""
        store = FileCheckpointStore(tmp_path)
        store.put(record(data=b"same"))
        store.put(record(data=b"same"))
        generations = store.generations(cid())
        assert len(generations) == 2
        assert generations[0]["digest"] == generations[1]["digest"]
        assert len(store._blobs) == 1

    def test_keep_generations_validated(self, tmp_path):
        with pytest.raises(ValueError):
            FileCheckpointStore(tmp_path, keep_generations=0)


class TestDurability:
    def test_fresh_handle_reads_previous_writes(self, tmp_path):
        """A second handle on the directory — the respawned-process
        shape — sees everything the first one wrote."""
        writer = FileCheckpointStore(tmp_path)
        writer.put(record(1, data=b"one"))
        writer.put(record(2, data=b"two", host="beta"))
        reader = FileCheckpointStore(tmp_path)
        assert reader.get(cid(1)).data == b"one"
        assert [r.data for r in reader.hosted_at("beta")] == [b"two"]
        assert len(reader) == 2

    def test_writes_are_visible_without_reopen(self, tmp_path):
        """Reads always consult the disk, so two live handles stay
        coherent — the parent/child sharing pattern."""
        left, right = FileCheckpointStore(tmp_path), FileCheckpointStore(tmp_path)
        left.put(record(data=b"from-left"))
        assert right.get(cid()).data == b"from-left"
        right.put(record(data=b"from-right"))
        assert left.get(cid()).data == b"from-right"

    def test_corrupt_manifest_tolerated(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        store.put(record(1))
        slot = store._slot(cid(1))
        (slot / FileCheckpointStore.MANIFEST).write_text("{ not json")
        assert store.get(cid(1)) is None
        assert len(store) == 0
        # The slot heals on the next put.
        store.put(record(1, data=b"healed"))
        assert store.get(cid(1)).data == b"healed"

    def test_stale_tmp_file_ignored(self, tmp_path):
        """A writer SIGKILLed mid-write leaves only a tmp file behind;
        readers never see it."""
        store = FileCheckpointStore(tmp_path)
        store.put(record(1, data=b"good"))
        slot = store._slot(cid(1))
        torn = dict(json.loads((slot / FileCheckpointStore.MANIFEST).read_text()))
        torn["latest"] = 999
        (slot / f"{FileCheckpointStore.MANIFEST}.tmp.12345").write_text(
            json.dumps(torn)
        )
        assert store.get(cid(1)).data == b"good"
