"""Tests for the heartbeat failure detector."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.core.events import CORE_FAILED, CORE_RECOVERED, CORE_SUSPECTED
from repro.errors import ConfigurationError
from repro.recovery import DetectorConfig
from repro.recovery.detector import ALIVE, FAILED, SUSPECT


@pytest.fixture
def rig():
    cluster = Cluster(["a", "b", "c"])
    cluster.enable_recovery(auto_recover=False)
    return cluster, FailureInjector(cluster)


class TestConfig:
    def test_defaults_are_ordered(self):
        config = DetectorConfig()
        assert config.interval < config.suspect_after < config.fail_after

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(interval=0.0)

    def test_rejects_suspect_before_interval(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(interval=1.0, suspect_after=0.5)

    def test_rejects_fail_before_suspect(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(suspect_after=2.0, fail_after=1.0)


class TestVerdictTransitions:
    def test_alive_while_quiet(self, rig):
        cluster, _ = rig
        cluster.advance(2.0)
        detector = cluster["a"].detector
        assert detector.verdict("b") == ALIVE
        assert detector.verdict("c") == ALIVE

    def test_crash_is_suspected_then_failed(self, rig):
        cluster, inject = rig
        events = []
        cluster["a"].events.subscribe(CORE_SUSPECTED, events.append)
        cluster["a"].events.subscribe(CORE_FAILED, events.append)
        inject.crash_core_at(1.0, "b")
        cluster.advance(6.0)
        names = [(e.name, e.data["core"]) for e in events]
        assert ("coreSuspected", "b") in names
        assert ("coreFailed", "b") in names
        assert names.index(("coreSuspected", "b")) < names.index(("coreFailed", "b"))
        assert cluster["a"].detector.verdict("b") == FAILED

    def test_detection_latency_bounded(self, rig):
        cluster, inject = rig
        failed_at = []
        cluster["a"].events.subscribe(
            CORE_FAILED, lambda e: failed_at.append(cluster.now)
        )
        inject.crash_core_at(2.0, "b")
        config = cluster["a"].detector.config
        cluster.advance(2.0 + config.fail_after + 2 * config.interval)
        assert failed_at
        assert failed_at[0] - 2.0 <= config.fail_after + config.interval + 1e-9

    def test_revival_publishes_recovered_with_downtime(self, rig):
        cluster, inject = rig
        recovered = []
        cluster["a"].events.subscribe(CORE_RECOVERED, recovered.append)
        inject.crash_core_at(1.0, "b")
        inject.revive_core_at(6.0, "b")
        cluster.advance(8.0)
        assert recovered
        assert recovered[0].data["core"] == "b"
        assert recovered[0].data["downtime"] > 0

    def test_silent_for_reported(self, rig):
        cluster, inject = rig
        suspected = []
        cluster["a"].events.subscribe(CORE_SUSPECTED, suspected.append)
        inject.crash_core_at(1.0, "b")
        cluster.advance(4.0)
        config = cluster["a"].detector.config
        assert suspected[0].data["silent_for"] >= config.suspect_after


class TestPartitionVerdicts:
    def test_both_sides_declare_the_other(self, rig):
        cluster, inject = rig
        inject.partition_at(1.0, {"a"})
        cluster.advance(6.0)
        assert cluster["a"].detector.verdict("b") == FAILED
        assert cluster["b"].detector.verdict("a") == FAILED

    def test_heal_restores_alive(self, rig):
        cluster, inject = rig
        inject.partition_at(1.0, {"a"})
        inject.heal_at(6.0)
        cluster.advance(8.0)
        assert cluster["a"].detector.verdict("b") == ALIVE
        assert cluster["b"].detector.verdict("a") == ALIVE


class TestLifecycle:
    def test_state_snapshot(self, rig):
        cluster, _ = rig
        cluster.advance(1.0)
        state = cluster["a"].detector.state()
        assert set(state) == {"b", "c"}
        assert all(view["status"] == ALIVE for view in state.values())

    def test_new_peer_gets_grace(self, rig):
        """A Core added later starts its silence clock at first sight."""
        cluster, _ = rig
        cluster.advance(1.0)
        cluster.add_core("d")
        cluster.advance(1.0)
        assert cluster["a"].detector.verdict("d") == ALIVE
        assert cluster["d"].detector is not None  # late Cores get detectors

    def test_shutdown_stops_detector(self, rig):
        cluster, _ = rig
        cluster.advance(1.0)
        ticks_before = cluster["a"].metrics.counter_value("detector.ticks")
        cluster.shutdown_core("a")
        cluster.advance(3.0)
        assert cluster["a"].metrics.counter_value("detector.ticks") == ticks_before

    def test_crashed_core_detector_does_not_fail_sweep(self, rig):
        """A crashed Core's timers keep firing; its pings all fail typed."""
        cluster, inject = rig
        inject.crash_core_at(1.0, "a")
        cluster.advance(6.0)  # must not raise
        assert cluster["a"].detector.verdict("b") == FAILED


class TestObservability:
    def test_verdict_counters(self, rig):
        cluster, inject = rig
        inject.crash_core_at(1.0, "b")
        inject.revive_core_at(6.0, "b")
        cluster.advance(9.0)
        metrics = cluster["a"].metrics
        assert metrics.counter_value("detector.suspicions", peer="b") == 1
        assert metrics.counter_value("detector.failures", peer="b") == 1
        assert metrics.counter_value("detector.recoveries", peer="b") == 1

    def test_latency_histogram_observed(self, rig):
        cluster, inject = rig
        inject.crash_core_at(1.0, "b")
        cluster.advance(6.0)
        histogram = cluster["a"].metrics.histogram("detector.detection_latency")
        assert histogram.count == 1  # one failure verdict, one observation

    def test_verdict_spans_when_tracing(self):
        cluster = Cluster(["a", "b"], tracing=True)
        cluster.enable_recovery(auto_recover=False)
        FailureInjector(cluster).crash_core_at(1.0, "b")
        cluster.advance(6.0)
        names = [span.name for span in cluster["a"].tracer.spans()]
        assert any(name.startswith("suspicion:") for name in names)
        assert any(name.startswith("failure:") for name in names)
