"""Tests for checkpoint policies and the checkpoint store."""

import pytest

from repro.complet.relocators import Pull
from repro.core.core import Core
from repro.core.persistence import Snapshot
from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter, DataSource
from repro.recovery import CheckpointPolicy
from tests.anchors import Holder


@pytest.fixture
def rig():
    cluster = Cluster(["alpha", "beta", "gamma"])
    cluster.enable_recovery(auto_recover=False)
    return cluster, cluster.checkpoints


class TestProtect:
    def test_protect_takes_immediate_checkpoint(self, rig):
        cluster, checkpoints = rig
        counter = Counter(5, _core=cluster["alpha"])
        complet_id = checkpoints.protect(counter)
        record = checkpoints.store.get(complet_id)
        assert record is not None
        assert record.host == "alpha"
        assert checkpoints.is_protected(complet_id)

    def test_default_policy_checkpoints_once(self, rig):
        cluster, checkpoints = rig
        counter = Counter(5, _core=cluster["alpha"])
        complet_id = checkpoints.protect(counter)
        taken = checkpoints.store.get(complet_id).taken_at
        counter.increment()
        cluster.advance(10.0)
        assert checkpoints.store.get(complet_id).taken_at == taken

    def test_interval_policy_recheckpoints(self, rig):
        cluster, checkpoints = rig
        counter = Counter(5, _core=cluster["alpha"])
        complet_id = checkpoints.protect(counter, CheckpointPolicy(interval=2.0))
        counter.increment(by=37)
        cluster.advance(2.5)
        snap = Snapshot.from_bytes(checkpoints.store.get(complet_id).data)
        from repro.core.persistence import restore

        revived = restore(cluster["beta"], snap)
        assert revived.read() == 42

    def test_unprotect_cancels_timer(self, rig):
        cluster, checkpoints = rig
        counter = Counter(5, _core=cluster["alpha"])
        complet_id = checkpoints.protect(counter, CheckpointPolicy(interval=1.0))
        checkpoints.unprotect(complet_id)
        taken = checkpoints.store.get(complet_id).taken_at
        cluster.advance(5.0)
        assert checkpoints.store.get(complet_id).taken_at == taken
        assert not checkpoints.is_protected(complet_id)

    def test_policy_of(self, rig):
        cluster, checkpoints = rig
        policy = CheckpointPolicy(interval=3.0, on_arrival=True)
        complet_id = checkpoints.protect(
            Counter(0, _core=cluster["alpha"]), policy
        )
        assert checkpoints.policy_of(complet_id) == policy
        checkpoints.unprotect(complet_id)
        assert checkpoints.policy_of(complet_id) is None


class TestOnArrival:
    def test_move_refreshes_host(self, rig):
        cluster, checkpoints = rig
        counter = Counter(5, _core=cluster["alpha"])
        complet_id = checkpoints.protect(counter, CheckpointPolicy(on_arrival=True))
        cluster.move(counter, "gamma")
        assert checkpoints.store.get(complet_id).host == "gamma"

    def test_without_on_arrival_host_goes_stale(self, rig):
        cluster, checkpoints = rig
        counter = Counter(5, _core=cluster["alpha"])
        complet_id = checkpoints.protect(counter)
        cluster.move(counter, "gamma")
        assert checkpoints.store.get(complet_id).host == "alpha"


class TestPullGroup:
    def test_group_members_checkpointed_together(self, rig):
        cluster, checkpoints = rig
        head = Holder(None, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(head._fargo_target_id)
        anchor.members = [
            DataSource(64, _core=cluster["alpha"]) for _ in range(3)
        ]
        for stub in anchor.members:
            Core.get_meta_ref(stub).set_relocator(Pull())
        head_id = checkpoints.protect(head)
        record = checkpoints.store.get(head_id)
        assert len(record.group) == 4  # head + three pulled members
        for member_id in record.group:
            member = checkpoints.store.get(member_id)
            assert member is not None
            assert member.group == record.group

    def test_remote_members_not_captured(self, rig):
        """Only the *local* pull-group is snapshotted by this host's pass."""
        cluster, checkpoints = rig
        source = DataSource(64, _core=cluster["alpha"])
        head = Holder(source, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(head._fargo_target_id)
        Core.get_meta_ref(anchor.ref).set_relocator(Pull())
        cluster.move(source, "beta")
        head_id = checkpoints.protect(head)
        assert checkpoints.store.get(head_id).group == (head_id,)


class TestSkipWindows:
    def test_checkpoint_skipped_when_host_down(self, rig):
        cluster, checkpoints = rig
        counter = Counter(5, _core=cluster["alpha"])
        complet_id = checkpoints.protect(counter, CheckpointPolicy(interval=1.0))
        before = checkpoints.skipped
        cluster.network.set_node_down("alpha")
        cluster.advance(3.0)
        assert checkpoints.skipped > before
        assert checkpoints.checkpoint(complet_id) is False

    def test_metrics_count_taken_checkpoints(self, rig):
        cluster, checkpoints = rig
        counter = Counter(5, _core=cluster["alpha"])
        checkpoints.protect(counter)
        assert cluster["alpha"].metrics.counter_value("checkpoint.taken") == 1


class TestStore:
    def test_by_str_accepts_full_and_short_forms(self, rig):
        cluster, checkpoints = rig
        counter = Counter(5, _core=cluster["alpha"])
        complet_id = checkpoints.protect(counter)
        assert checkpoints.store.by_str(str(complet_id)) is not None
        assert checkpoints.store.by_str(complet_id.short()) is not None
        assert checkpoints.store.by_str("nope") is None

    def test_hosted_at_and_discard(self, rig):
        cluster, checkpoints = rig
        one = checkpoints.protect(Counter(1, _core=cluster["alpha"]))
        two = checkpoints.protect(Counter(2, _core=cluster["beta"]))
        assert [r.complet_id for r in checkpoints.store.hosted_at("alpha")] == [one]
        checkpoints.store.discard(one)
        assert one not in checkpoints.store
        assert two in checkpoints.store
