"""Tests for automatic recovery: quorum, identity, reconciliation."""

import pytest

from repro.core.events import COMPLET_RECOVERED, CORE_RECONCILED
from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.workload import Counter
from repro.errors import CoreNotFoundError, DanglingReferenceError, FarGoError
from repro.recovery import CheckpointPolicy


@pytest.fixture
def rig():
    cluster = Cluster(["alpha", "beta", "gamma"])
    cluster.enable_recovery()
    return cluster, FailureInjector(cluster)


def _protected_counter(cluster, at, value=40):
    counter = Counter(value, _core=cluster[at], _at=at)
    cluster.checkpoints.protect(
        counter, CheckpointPolicy(interval=1.0, on_arrival=True)
    )
    counter.increment(by=2)
    return counter


class TestCrashRecovery:
    def test_identity_kept_after_genuine_crash(self, rig):
        cluster, inject = rig
        counter = _protected_counter(cluster, "gamma")
        inject.crash_core_at(2.0, "gamma")
        cluster.advance(7.0)
        report = cluster.recovery.reports[0]
        assert report.failed == "gamma"
        assert report.restored and not report.degraded
        assert report.unrepaired == []
        # The revival answers through a survivor under the old identity.
        fresh = cluster.stub_at("alpha", counter)
        assert fresh.read() == 42
        assert cluster.locate(fresh) != "gamma"

    def test_recovered_event_published(self, rig):
        cluster, inject = rig
        seen = []
        for name in ("alpha", "beta"):
            cluster[name].events.subscribe(COMPLET_RECOVERED, seen.append)
        counter = _protected_counter(cluster, "gamma")
        inject.crash_core_at(2.0, "gamma")
        cluster.advance(7.0)
        assert len(seen) == 1
        assert seen[0].data["original"] == str(counter._fargo_target_id)
        assert seen[0].data["degraded"] is False

    def test_recovery_is_idempotent_across_observers(self, rig):
        """Both surviving detectors declare the failure; one recovery runs."""
        cluster, inject = rig
        _protected_counter(cluster, "gamma")
        inject.crash_core_at(2.0, "gamma")
        cluster.advance(10.0)
        assert len(cluster.recovery.reports) == 1

    def test_destination_is_emptiest_survivor(self, rig):
        cluster, inject = rig
        Counter(0, _core=cluster["alpha"], _at="alpha")
        Counter(0, _core=cluster["alpha"], _at="alpha")
        _protected_counter(cluster, "gamma")
        inject.crash_core_at(2.0, "gamma")
        cluster.advance(7.0)
        assert cluster.recovery.reports[0].destination == "beta"

    def test_no_survivors_raises_typed(self):
        cluster = Cluster(["alpha", "beta"])
        cluster.enable_recovery(auto_recover=False)
        _protected_counter(cluster, "beta")
        cluster.network.set_node_down("alpha")
        cluster.network.set_node_down("beta")
        with pytest.raises(CoreNotFoundError):
            cluster.recovery.recover_core("beta")

    def test_pinned_destination(self, rig):
        cluster, inject = rig
        cluster.recovery.auto_recover = False
        counter = _protected_counter(cluster, "gamma")
        cluster.advance(1.5)  # let the interval checkpoint capture 42
        cluster.network.set_node_down("gamma")
        report = cluster.recovery.recover_core("gamma", destination="beta")
        assert report.destination == "beta"
        assert cluster.stub_at("alpha", counter).read() == 42


class TestPartitionQuorum:
    def test_minority_side_does_not_recover(self, rig):
        """The islanded Core sees everyone failed but must not act."""
        cluster, inject = rig
        _protected_counter(cluster, "alpha")
        inject.partition_at(2.0, {"alpha"})
        cluster.advance(8.0)
        for report in cluster.recovery.reports:
            assert report.failed == "alpha"  # only the majority acted

    def test_majority_recovers_degraded(self, rig):
        """A partitioned original may be alive: the revival is degraded."""
        cluster, inject = rig
        counter = _protected_counter(cluster, "alpha")
        inject.partition_at(2.0, {"alpha"})
        cluster.advance(8.0)
        report = next(r for r in cluster.recovery.reports if r.failed == "alpha")
        assert report.degraded and not report.restored
        # The original still runs on its island.
        assert counter.read() == 42
        # Old references on the majority side fail typed, not split-brained.
        with pytest.raises(FarGoError):
            cluster.stub_at("beta", counter).read()

    def test_degraded_original_keeps_protection(self, rig):
        """The partition-surviving original must stay recoverable."""
        cluster, inject = rig
        counter = _protected_counter(cluster, "alpha")
        original_id = counter._fargo_target_id
        inject.partition_at(2.0, {"alpha"})
        inject.heal_at(8.0)
        cluster.advance(12.0)
        assert cluster.checkpoints.is_protected(original_id)
        assert cluster.checkpoints.store.get(original_id) is not None
        # A later genuine crash of alpha still recovers the original.
        inject.crash_core_at(14.0, "alpha")
        cluster.advance(20.0)
        report = next(r for r in cluster.recovery.reports if r.restored)
        assert report.restored == [str(original_id)]  # identity kept
        fresh = cluster.stub_at(report.destination, counter)
        assert fresh.read() == 42


class TestReconcile:
    def test_revival_drops_stale_copy(self, rig):
        cluster, inject = rig
        counter = _protected_counter(cluster, "gamma")
        inject.crash_core_at(2.0, "gamma")
        inject.revive_core_at(10.0, "gamma")
        cluster.advance(14.0)
        hosts = [
            core.name
            for core in cluster.running_cores()
            if core.repository.hosts(counter._fargo_target_id)
        ]
        assert len(hosts) == 1
        assert hosts != ["gamma"]

    def test_reconcile_event(self, rig):
        cluster, inject = rig
        counter = _protected_counter(cluster, "gamma")
        seen = []
        cluster["gamma"].events.subscribe(CORE_RECONCILED, seen.append)
        inject.crash_core_at(2.0, "gamma")
        inject.revive_core_at(10.0, "gamma")
        cluster.advance(14.0)
        assert seen
        assert str(counter._fargo_target_id) in seen[0].data["dropped"]

    def test_revived_tracker_forwards_to_winner(self, rig):
        cluster, inject = rig
        counter = _protected_counter(cluster, "gamma")
        inject.crash_core_at(2.0, "gamma")
        inject.revive_core_at(10.0, "gamma")
        cluster.advance(14.0)
        # A reference seated at the revived Core reaches the revival.
        assert cluster.stub_at("gamma", counter).read() == 42

    def test_healed_partition_repairs_dangling_trackers(self, rig):
        """A false-positive failure must heal completely (chaos seed 5)."""
        cluster, inject = rig
        counter = _protected_counter(cluster, "alpha")
        # Seat a reference on the majority side before the split.
        seated = cluster.stub_at("beta", counter)
        assert seated.read() == 42
        inject.partition_at(2.0, {"alpha"})
        cluster.advance(8.0)
        with pytest.raises(DanglingReferenceError):
            seated.read()  # written off during the degraded recovery
        inject.heal_at(9.0)
        cluster.advance(13.0)
        # Reconciliation re-pointed the dangling tracker at the original.
        assert seated.read() == 42


class TestManualRestore:
    def test_restore_complet_by_short_id(self, rig):
        cluster, inject = rig
        cluster.recovery.auto_recover = False
        counter = _protected_counter(cluster, "gamma")
        cluster.advance(1.5)  # let the interval checkpoint capture 42
        cluster.network.set_node_down("gamma")
        new_id = cluster.recovery.restore_complet(
            counter._fargo_target_id.short(), destination="beta"
        )
        assert new_id == str(counter._fargo_target_id)  # identity kept
        assert cluster.stub_at("alpha", counter).read() == 42

    def test_restore_live_complet_gets_fresh_identity(self, rig):
        cluster, _ = rig
        counter = _protected_counter(cluster, "gamma")
        new_id = cluster.recovery.restore_complet(str(counter._fargo_target_id))
        assert new_id != str(counter._fargo_target_id)

    def test_restore_unknown_raises_typed(self, rig):
        cluster, _ = rig
        with pytest.raises(FarGoError):
            cluster.recovery.restore_complet("ghost/c9")
