"""Tests for the Peer Interface facade."""

import pytest

from repro.net.messages import MessageKind
from repro.net.peer import PeerInterface
from repro.net.serializer import Serializer
from repro.net.simnet import SimTransport
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler


@pytest.fixture
def peers():
    net = SimTransport(Scheduler(VirtualClock()))
    return PeerInterface("a", net), PeerInterface("b", net)


class TestObjectLevelCalls:
    def test_request_with_objects(self, peers):
        a, b = peers
        b.register(MessageKind.ADMIN_QUERY, lambda src, body: {"echo": body, "src": src})
        reply = a.request("b", MessageKind.ADMIN_QUERY, [1, 2, 3])
        assert reply == {"echo": [1, 2, 3], "src": "a"}

    def test_notify_is_one_way(self, peers):
        a, b = peers
        seen = []
        b.register(MessageKind.EVENT_NOTIFY, lambda src, body: seen.append(body))
        a.notify("b", MessageKind.EVENT_NOTIFY, ("evt", 1))
        assert seen == [("evt", 1)]

    def test_request_raw_passthrough(self, peers):
        a, b = peers
        b.register_raw(MessageKind.INVOKE, lambda src, payload: payload[::-1])
        assert a.request_raw("b", MessageKind.INVOKE, b"abc") == b"cba"

    def test_custom_serializer_pair(self, peers):
        a, b = peers
        tagged = Serializer(
            encode_hook=lambda o: ("T",) if isinstance(o, _Marker) else None,
            decode_hook=lambda t: _Marker(),
        )
        b.register(
            MessageKind.ADMIN_QUERY,
            lambda src, body: body,
            serializer=tagged,
        )
        out = a.request("b", MessageKind.ADMIN_QUERY, _Marker(), serializer=tagged)
        assert isinstance(out, _Marker)

    def test_isolation_objects_always_copied(self, peers):
        a, b = peers
        store = {}

        def handler(src, body):
            store["body"] = body
            return body

        b.register(MessageKind.ADMIN_QUERY, handler)
        original = {"mutable": [1]}
        reply = a.request("b", MessageKind.ADMIN_QUERY, original)
        assert store["body"] is not original
        assert reply is not original
        assert reply == original


class _Marker:
    pass
