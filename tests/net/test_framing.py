"""The length-prefixed TCP wire framing: round trips and malformed input."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import CoreDownError, TransportError
from repro.net import framing
from repro.net.framing import Frame, FrameDecoder, FramingError
from repro.net.messages import Envelope, MessageKind


def request_envelope(payload: bytes = b"body", headers: dict | None = None) -> Envelope:
    return Envelope(
        src="alpha",
        dst="beta",
        kind=MessageKind.INVOKE,
        payload=payload,
        headers=headers or {},
    )


class TestRoundTrip:
    def test_request(self):
        envelope = request_envelope(b"hello", {"oneway": "0", "trace": "t1"})
        data = framing.encode_request(envelope, 42)
        frames = FrameDecoder().feed(data)
        assert len(frames) == 1
        frame = frames[0]
        assert frame.type == framing.REQUEST
        assert frame.request_id == 42
        assert frame.src == "alpha"
        assert frame.dst == "beta"
        assert frame.kind == MessageKind.INVOKE.value
        assert frame.headers == {"oneway": "0", "trace": "t1"}
        assert frame.payload == b"hello"

    def test_oneway(self):
        data = framing.encode_request(request_envelope(), 7, oneway=True)
        frame = FrameDecoder().feed(data)[0]
        assert frame.type == framing.ONEWAY

    def test_to_envelope_rebuilds_coordinates(self):
        original = request_envelope(b"p", {"h": "v"})
        frame = FrameDecoder().feed(framing.encode_request(original, 1))[0]
        rebuilt = frame.to_envelope()
        assert rebuilt.src == original.src
        assert rebuilt.dst == original.dst
        assert rebuilt.kind is original.kind
        assert rebuilt.payload == original.payload
        assert rebuilt.headers == original.headers

    def test_reply(self):
        data = framing.encode_reply(9, b"\x00result")
        frame = FrameDecoder().feed(data)[0]
        assert frame.type == framing.REPLY
        assert frame.request_id == 9
        assert frame.payload == b"\x00result"

    def test_empty_payloads(self):
        data = framing.encode_request(request_envelope(b""), 1)
        data += framing.encode_reply(2, b"")
        frames = FrameDecoder().feed(data)
        assert [f.payload for f in frames] == [b"", b""]

    def test_error_frame_carries_typed_exception(self):
        error = CoreDownError("node 'beta' is down")
        data = framing.encode_error(3, error)
        frame = FrameDecoder().feed(data)[0]
        assert frame.type == framing.ERROR
        decoded = framing.decode_error(frame.payload)
        assert isinstance(decoded, CoreDownError)
        assert "beta" in str(decoded)

    def test_unpicklable_error_degrades_to_repr(self):
        class Evil(Exception):
            def __reduce__(self):
                raise RuntimeError("nope")

        data = framing.encode_error(4, Evil("boom"))
        decoded = framing.decode_error(FrameDecoder().feed(data)[0].payload)
        assert isinstance(decoded, TransportError)
        assert "boom" in str(decoded)


class TestPartialReads:
    def test_byte_by_byte(self):
        envelope = request_envelope(b"fragmented-payload", {"k": "v"})
        data = framing.encode_request(envelope, 11)
        decoder = FrameDecoder()
        collected = []
        for i in range(len(data)):
            collected.extend(decoder.feed(data[i:i + 1]))
        assert len(collected) == 1
        assert collected[0].payload == b"fragmented-payload"
        assert decoder.pending_bytes == 0

    def test_several_frames_in_one_chunk(self):
        data = b"".join(
            framing.encode_request(request_envelope(bytes([i]) * i), i)
            for i in range(1, 5)
        )
        frames = FrameDecoder().feed(data)
        assert [f.request_id for f in frames] == [1, 2, 3, 4]

    def test_frame_split_across_chunks_keeps_residue(self):
        data = framing.encode_request(request_envelope(b"abc"), 1)
        decoder = FrameDecoder()
        assert decoder.feed(data[:5]) == []
        assert decoder.pending_bytes == 5
        frames = decoder.feed(data[5:])
        assert len(frames) == 1


class TestMalformedInput:
    def test_bad_version(self):
        data = bytearray(framing.encode_request(request_envelope(), 1))
        data[4] = framing.VERSION + 1
        with pytest.raises(FramingError):
            FrameDecoder().feed(bytes(data))

    def test_unknown_type(self):
        data = bytearray(framing.encode_request(request_envelope(), 1))
        data[5] = 99
        with pytest.raises(FramingError):
            FrameDecoder().feed(bytes(data))

    def test_oversized_length_prefix(self):
        import struct

        data = struct.pack("<I", framing.MAX_FRAME_BYTES + 1)
        with pytest.raises(FramingError):
            FrameDecoder().feed(data)

    def test_undersized_frame(self):
        import struct

        data = struct.pack("<I", 2) + b"xx"
        with pytest.raises(FramingError):
            FrameDecoder().feed(data)

    def test_truncated_string_field(self):
        data = bytearray(framing.encode_request(request_envelope(), 1))
        # Claim src is far longer than the remaining body.
        offset = 4 + 10  # length prefix + head
        data[offset:offset + 2] = (60_000).to_bytes(2, "little")
        with pytest.raises(FramingError):
            FrameDecoder().feed(bytes(data))

    def test_decode_error_rejects_garbage(self):
        with pytest.raises(FramingError):
            framing.decode_error(b"not-a-pickle")

    def test_decode_error_rejects_non_exception(self):
        with pytest.raises(FramingError):
            framing.decode_error(pickle.dumps({"not": "an exception"}))

    def test_overlong_string_field_rejected_at_encode(self):
        envelope = request_envelope()
        envelope.headers["k"] = "v" * 70_000
        with pytest.raises(FramingError):
            framing.encode_request(envelope, 1)


def test_framing_error_is_transport_error():
    assert issubclass(FramingError, TransportError)


def test_frame_dataclass_defaults():
    frame = Frame(type=framing.REPLY, request_id=1, payload=b"")
    assert frame.src == "" and frame.headers == {}
