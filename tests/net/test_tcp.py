"""TcpTransport: real sockets on loopback, within one process."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    CoreDownError,
    CoreUnreachableError,
    DeadlineExceededError,
    DuplicateCoreError,
    TransportCapabilityError,
    TransportError,
)
from repro.net import Envelope, MessageKind, TcpTransport
from repro.net.retry import RetryPolicy

pytestmark = pytest.mark.tcp


def envelope(src: str, dst: str, payload: bytes = b"x") -> Envelope:
    return Envelope(src=src, dst=dst, kind=MessageKind.HEARTBEAT, payload=payload)


@pytest.fixture
def pair():
    """Two hubs, one node each, wired to each other."""
    hub_a = TcpTransport(request_timeout=10.0, connect_timeout=5.0)
    hub_b = TcpTransport(request_timeout=10.0, connect_timeout=5.0)
    hub_a.register("a", lambda env: b"a-got:" + env.payload)
    hub_b.register("b", lambda env: b"b-got:" + env.payload)
    hub_a.add_peer("b", hub_b.local_address("b"))
    hub_b.add_peer("a", hub_a.local_address("a"))
    yield hub_a, hub_b
    hub_a.close()
    hub_b.close()


class TestRequestReply:
    def test_round_trip(self, pair):
        hub_a, hub_b = pair
        assert hub_b.send(envelope("b", "a", b"ping")) == b"a-got:ping"
        assert hub_a.send(envelope("a", "b", b"pong")) == b"b-got:pong"

    def test_concurrent_senders_multiplex_one_connection(self, pair):
        _hub_a, hub_b = pair
        results: list[bytes] = []
        errors: list[BaseException] = []

        def call(i: int) -> None:
            try:
                results.append(hub_b.send(envelope("b", "a", b"%d" % i)))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=call, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert not errors
        assert sorted(results) == sorted(b"a-got:%d" % i for i in range(8))

    def test_nested_synchronous_callback(self, pair):
        """A handler that itself calls back over the network (A->B->A)."""
        hub_a, hub_b = pair
        hub_a.deregister("a")
        hub_a.register(
            "a", lambda env: b"a+" + hub_a.send(envelope("a", "b", b"nested"))
        )
        hub_b.add_peer("a", hub_a.local_address("a"))  # listener moved ports
        assert hub_b.send(envelope("b", "a")) == b"a+b-got:nested"

    def test_oneway_post(self, pair):
        hub_a, hub_b = pair
        seen = threading.Event()
        hub_a.deregister("a")

        def handler(env):
            seen.set()
            return b""

        hub_a.register("a", handler)
        hub_b.add_peer("a", hub_a.local_address("a"))  # listener moved ports
        hub_b.post(envelope("b", "a", b"fire-and-forget"))
        assert seen.wait(timeout=10)

    def test_sender_side_stats(self, pair):
        _hub_a, hub_b = pair
        before = hub_b.stats.messages
        hub_b.send(envelope("b", "a", b"12345"))
        assert hub_b.stats.messages == before + 2  # request + reply
        assert hub_b.link_stats("b", "a").bytes >= 5

    def test_trace_records_envelopes(self, pair):
        _hub_a, hub_b = pair
        hub_b.send(envelope("b", "a"))
        assert any("b -> a" in line for line in hub_b.trace)


class TestErrors:
    def test_handler_exception_travels_back_typed(self, pair):
        hub_a, hub_b = pair
        hub_a.deregister("a")

        def failing(env):
            raise CoreDownError("synthetic failure inside handler")

        hub_a.register("a", failing)
        hub_b.add_peer("a", hub_a.local_address("a"))  # listener moved ports
        with pytest.raises(CoreDownError, match="synthetic"):
            hub_b.send(envelope("b", "a"))

    def test_unknown_destination(self, pair):
        _hub_a, hub_b = pair
        with pytest.raises(CoreUnreachableError):
            hub_b.send(envelope("b", "nowhere"))

    def test_connection_refused_maps_to_unreachable(self):
        hub = TcpTransport(
            reconnect=RetryPolicy(max_attempts=2, base_delay=0.01),
            connect_timeout=2.0,
        )
        try:
            hub.register("x", lambda env: b"")
            port = hub.local_address("x")[1]
            hub.add_peer("ghost", ("127.0.0.1", (port + 1) % 65535 or 1025))
            with pytest.raises(CoreUnreachableError):
                hub.send(envelope("x", "ghost"))
        finally:
            hub.close()

    def test_timeout_raises_deadline_exceeded(self, pair):
        import time

        hub_a, hub_b = pair
        hub_a.deregister("a")
        hub_a.register("a", lambda env: time.sleep(3.0) or b"late")
        with pytest.raises(DeadlineExceededError):
            hub_b.send(envelope("b", "a"), timeout=0.3)

    def test_duplicate_registration(self, pair):
        hub_a, _hub_b = pair
        with pytest.raises(DuplicateCoreError):
            hub_a.register("a", lambda env: b"")

    def test_deregistered_node_refuses_traffic(self, pair):
        hub_a, hub_b = pair
        hub_a.deregister("a")
        hub_a.register("a2", lambda env: b"")  # keep the hub alive
        # b's hub does not know "a" was deregistered; the remote hub
        # answers with the typed refusal.
        with pytest.raises((CoreDownError, CoreUnreachableError)):
            hub_b.send(envelope("b", "a"))


class TestReconnect:
    def test_reconnects_after_peer_restart(self):
        hub_a = TcpTransport()
        hub_b = TcpTransport()
        try:
            hub_a.register("a", lambda env: b"v1:" + env.payload)
            hub_b.register("b", lambda env: b"")
            hub_b.add_peer("a", hub_a.local_address("a"))
            hub_a.add_peer("b", hub_b.local_address("b"))
            assert hub_b.send(envelope("b", "a", b"one")) == b"v1:one"
            port = hub_a.local_address("a")[1]
            hub_a.close()

            # Restart "a" on the same port in a fresh hub.
            hub_a2 = TcpTransport(ports={"a": port})
            try:
                hub_a2.register("a", lambda env: b"v2:" + env.payload)
                hub_a2.add_peer("b", hub_b.local_address("b"))
                # The cached connection is stale; the transport-level
                # invalidation plus an RPC-style retry recovers.
                policy = RetryPolicy(max_attempts=4, base_delay=0.05)

                def attempt():
                    return hub_b.send(envelope("b", "a", b"two"))

                result = policy.run(hub_b.scheduler, attempt)
                assert result == b"v2:two"
            finally:
                hub_a2.close()
        finally:
            hub_b.close()


class TestChaos:
    def test_node_down_refuses_at_sender(self, pair):
        _hub_a, hub_b = pair
        hub_b.set_node_down("a")
        assert not hub_b.is_up("a")
        assert not hub_b.can_reach("b", "a")
        with pytest.raises(CoreDownError):
            hub_b.send(envelope("b", "a"))
        hub_b.set_node_down("a", down=False)
        assert hub_b.send(envelope("b", "a", b"back")) == b"a-got:back"

    def test_local_node_down_refuses_at_receiver(self, pair):
        hub_a, hub_b = pair
        hub_a.set_node_down("a")  # only a's own hub knows
        with pytest.raises(CoreDownError):
            hub_b.send(envelope("b", "a"))
        hub_a.set_node_down("a", down=False)

    def test_link_cut(self, pair):
        _hub_a, hub_b = pair
        hub_b.set_link("b", "a", up=False)
        with pytest.raises(CoreUnreachableError):
            hub_b.send(envelope("b", "a"))
        hub_b.set_link("b", "a", up=True)
        assert hub_b.send(envelope("b", "a", b"healed")) == b"a-got:healed"

    def test_partition(self, pair):
        _hub_a, hub_b = pair
        hub_b.partition({"a"}, {"b"})
        assert not hub_b.can_reach("b", "a")
        with pytest.raises(CoreUnreachableError):
            hub_b.send(envelope("b", "a"))
        hub_b.heal_partition()
        assert hub_b.can_reach("b", "a")

    def test_injected_latency_is_reported(self, pair):
        _hub_a, hub_b = pair
        hub_b.set_link("b", "a", latency=0.01)
        assert hub_b.transfer_time("b", "a", 100) == pytest.approx(0.01)
        assert hub_b.send(envelope("b", "a", b"slow")) == b"a-got:slow"

    def test_bandwidth_knob_is_simnet_only(self, pair):
        _hub_a, hub_b = pair
        with pytest.raises(TransportCapabilityError):
            hub_b.set_link("b", "a", bandwidth=1000.0)


class TestLifecycle:
    def test_close_is_idempotent(self):
        hub = TcpTransport()
        hub.register("x", lambda env: b"")
        hub.close()
        hub.close()

    def test_send_after_close_fails(self):
        hub = TcpTransport()
        hub.register("x", lambda env: b"")
        hub.close()
        with pytest.raises(TransportError):
            hub.send(envelope("x", "x"))

    def test_listener_port_released_after_close(self):
        import socket

        hub = TcpTransport()
        hub.register("x", lambda env: b"")
        port = hub.local_address("x")[1]
        hub.close()
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind(("127.0.0.1", port))  # must not raise

    def test_probe(self, pair):
        _hub_a, hub_b = pair
        assert hub_b.probe("a", timeout=5.0)
        assert not hub_b.probe("nonexistent", timeout=1.0)
