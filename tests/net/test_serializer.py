"""Tests for hooked serialization."""

import pytest

from repro.errors import SerializationError
from repro.net.serializer import PLAIN, Serializer


class Payload:
    def __init__(self, value):
        self.value = value


class Diverted:
    """Marker type diverted out of the stream by the test hooks."""

    def __init__(self, tag):
        self.tag = tag


class TestPlainSerializer:
    def test_roundtrip_basics(self):
        for obj in [1, "s", 3.5, None, True, [1, 2], {"a": (1, 2)}, b"bytes"]:
            assert PLAIN.roundtrip(obj) == obj

    def test_roundtrip_is_a_copy(self):
        original = {"k": [1, 2, 3]}
        copy = PLAIN.roundtrip(original)
        assert copy == original
        assert copy is not original
        assert copy["k"] is not original["k"]

    def test_custom_class_roundtrip(self):
        out = PLAIN.roundtrip(Payload({"deep": [Payload(1)]}))
        assert isinstance(out, Payload)
        assert isinstance(out.value["deep"][0], Payload)

    def test_unserializable_raises(self):
        with pytest.raises(SerializationError):
            PLAIN.dumps(lambda: None)

    def test_token_without_decode_hook_raises(self):
        encoder = Serializer(encode_hook=lambda o: "tok" if isinstance(o, Diverted) else None)
        data = encoder.dumps(Diverted("x"))
        with pytest.raises(SerializationError):
            PLAIN.loads(data)


class TestHookedSerializer:
    def _pair(self):
        registry = {}

        def encode(obj):
            if isinstance(obj, Diverted):
                registry[obj.tag] = obj
                return ("diverted", obj.tag)
            return None

        def decode(token):
            kind, tag = token
            assert kind == "diverted"
            return registry[tag]

        return Serializer(encode_hook=encode, decode_hook=decode), registry

    def test_diverted_objects_keep_identity(self):
        serializer, _registry = self._pair()
        diverted = Diverted("a")
        out = serializer.roundtrip({"inner": diverted})
        assert out["inner"] is diverted

    def test_non_diverted_copied(self):
        serializer, _registry = self._pair()
        payload = Payload(7)
        out = serializer.roundtrip([payload, Diverted("b")])
        assert out[0] is not payload
        assert out[0].value == 7
        assert out[1].tag == "b"

    def test_nested_divert_in_graph(self):
        serializer, _ = self._pair()
        graph = {"list": [Diverted("x"), {"deep": Diverted("y")}]}
        out = serializer.roundtrip(graph)
        assert out["list"][0].tag == "x"
        assert out["list"][1]["deep"].tag == "y"

    def test_shared_object_stays_shared(self):
        serializer, _ = self._pair()
        shared = Payload("shared")
        out = serializer.roundtrip((shared, shared))
        assert out[0] is out[1]

    def test_hook_exception_keeps_fargo_type(self):
        from repro.errors import CompletBoundaryError

        def encode(obj):
            if isinstance(obj, Diverted):
                raise CompletBoundaryError("boundary")
            return None

        serializer = Serializer(encode_hook=encode)
        with pytest.raises(CompletBoundaryError):
            serializer.dumps([Diverted("x")])
