"""Tests for wire message kinds and envelopes."""

from repro.net.messages import Envelope, MessageKind


class TestMessageKind:
    def test_values_are_unique(self):
        values = [kind.value for kind in MessageKind]
        assert len(values) == len(set(values))

    def test_protocol_covers_every_unit(self):
        """The kind enumeration names the complete Core-to-Core protocol."""
        values = {kind.value for kind in MessageKind}
        for expected in (
            "invoke",
            "move_complet",
            "move_request",
            "clone_request",
            "tracker_lookup",
            "tracker_update",
            "location_update",
            "location_query",
            "name_bind",
            "name_lookup",
            "instantiate",
            "event_notify",
            "event_subscribe",
            "profile_probe",
            "admin_query",
        ):
            assert expected in values

    def test_str_is_value(self):
        assert str(MessageKind.INVOKE) == "invoke"


class TestEnvelope:
    def test_describe(self):
        envelope = Envelope(
            src="a", dst="b", kind=MessageKind.INVOKE, payload=b"12345", msg_id=7
        )
        description = envelope.describe()
        assert "[7]" in description
        assert "a -> b" in description
        assert "invoke" in description
        assert "5B" in description

    def test_headers_default_independent(self):
        e1 = Envelope("a", "b", MessageKind.INVOKE, b"")
        e2 = Envelope("a", "b", MessageKind.INVOKE, b"")
        e1.headers["k"] = "v"
        assert e2.headers == {}
