"""Tests for the request/reply RPC layer."""

import pytest

from repro.errors import RemoteInvocationError, TransportError
from repro.net.messages import MessageKind
from repro.net.rpc import RpcEndpoint
from repro.net.simnet import SimTransport
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler


@pytest.fixture
def net():
    return SimTransport(Scheduler(VirtualClock()))


@pytest.fixture
def pair(net):
    a = RpcEndpoint("a", net)
    b = RpcEndpoint("b", net)
    return a, b


class TestCalls:
    def test_round_trip(self, pair):
        a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda src, payload: payload.upper())
        assert a.call("b", MessageKind.ADMIN_QUERY, b"hello") == b"HELLO"

    def test_handler_sees_source(self, pair):
        a, b = pair
        sources = []

        def handler(src, payload):
            sources.append(src)
            return b""

        b.register(MessageKind.ADMIN_QUERY, handler)
        a.call("b", MessageKind.ADMIN_QUERY, b"")
        assert sources == ["a"]

    def test_missing_handler_raises_at_caller(self, pair):
        a, _b = pair
        with pytest.raises(TransportError, match="no handler"):
            a.call("b", MessageKind.ADMIN_QUERY, b"")

    def test_duplicate_handler_rejected(self, pair):
        _a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"")
        with pytest.raises(TransportError):
            b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"")

    def test_non_bytes_reply_rejected(self, pair):
        a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: "not-bytes")
        with pytest.raises(TransportError):
            a.call("b", MessageKind.ADMIN_QUERY, b"")


class TestExceptionPropagation:
    def test_exception_crosses_by_value(self, pair):
        a, b = pair

        def handler(src, payload):
            raise ValueError("remote failure")

        b.register(MessageKind.ADMIN_QUERY, handler)
        with pytest.raises(ValueError, match="remote failure"):
            a.call("b", MessageKind.ADMIN_QUERY, b"")

    def test_fargo_error_keeps_type(self, pair):
        from repro.errors import NameNotFoundError

        a, b = pair

        def handler(src, payload):
            raise NameNotFoundError("nothing here")

        b.register(MessageKind.ADMIN_QUERY, handler)
        with pytest.raises(NameNotFoundError):
            a.call("b", MessageKind.ADMIN_QUERY, b"")

    def test_unpicklable_exception_degrades_to_repr(self, pair):
        a, b = pair

        class Weird(Exception):
            def __init__(self):
                super().__init__("weird")
                self.callback = lambda: None  # unpicklable

        def handler(src, payload):
            raise Weird()

        b.register(MessageKind.ADMIN_QUERY, handler)
        with pytest.raises(RemoteInvocationError, match="Weird"):
            a.call("b", MessageKind.ADMIN_QUERY, b"")


class TestPost:
    def test_one_way_delivery(self, pair):
        a, b = pair
        received = []

        def handler(src, payload):
            received.append(payload)
            return b""

        b.register(MessageKind.EVENT_NOTIFY, handler)
        a.post("b", MessageKind.EVENT_NOTIFY, b"event")
        assert received == [b"event"]

    def test_close_detaches(self, pair, net):
        from repro.errors import CoreUnreachableError

        a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"")
        b.close()
        with pytest.raises(CoreUnreachableError):
            a.call("b", MessageKind.ADMIN_QUERY, b"")
