"""Tests for the simulated network: links, cost model, failures, accounting."""

import pytest

from repro.errors import (
    ConfigurationError,
    CoreDownError,
    CoreUnreachableError,
    DuplicateCoreError,
)
from repro.net.messages import Envelope, MessageKind
from repro.net.simnet import Link, SimNetwork
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler


@pytest.fixture
def net():
    scheduler = Scheduler(VirtualClock())
    network = SimNetwork(scheduler, default_bandwidth=1000.0, default_latency=0.1)
    return network


def _echo_node(network, name):
    received = []

    def handler(envelope):
        received.append(envelope)
        return b"reply:" + envelope.payload

    network.register(name, handler)
    return received


def _envelope(src, dst, payload=b"hello"):
    return Envelope(src=src, dst=dst, kind=MessageKind.ADMIN_QUERY, payload=payload)


class TestLink:
    def test_transfer_time(self):
        link = Link(bandwidth=1000.0, latency=0.5)
        assert link.transfer_time(1000) == pytest.approx(1.5)

    def test_zero_bytes_costs_latency(self):
        assert Link(bandwidth=100.0, latency=0.25).transfer_time(0) == 0.25

    def test_unlimited_bandwidth(self):
        from repro.net.simnet import UNLIMITED

        assert Link(bandwidth=UNLIMITED, latency=0.1).transfer_time(10**9) == 0.1


class TestDelivery:
    def test_request_reply(self, net):
        received = _echo_node(net, "b")
        net.register("a", lambda e: b"")
        reply = net.send(_envelope("a", "b"))
        assert reply == b"reply:hello"
        assert len(received) == 1

    def test_time_charged_for_both_directions(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        payload = b"x" * 1000
        net.send(_envelope("a", "b", payload))
        # request: 0.1 + 1000/1000 = 1.1 ; reply ~ 0.1 + 1006/1000
        assert net.scheduler.clock.now() == pytest.approx(2.206, abs=0.01)

    def test_post_charges_one_direction(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        net.post(_envelope("a", "b", b""))
        assert net.scheduler.clock.now() == pytest.approx(0.1)

    def test_loopback_is_free(self, net):
        _echo_node(net, "a")
        net.send(_envelope("a", "a"))
        assert net.scheduler.clock.now() == 0.0

    def test_msg_ids_increase(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        e1, e2 = _envelope("a", "b"), _envelope("a", "b")
        net.send(e1)
        net.send(e2)
        assert e2.msg_id > e1.msg_id


class TestTopologyMutation:
    def test_set_link_bandwidth_changes_cost(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        net.set_link("a", "b", bandwidth=10.0, latency=0.0)
        net.send(_envelope("a", "b", b"x" * 100))
        assert net.scheduler.clock.now() >= 10.0

    def test_symmetric_by_default(self, net):
        net.set_link("a", "b", bandwidth=500.0)
        assert net.link("a", "b").bandwidth == 500.0
        assert net.link("b", "a").bandwidth == 500.0

    def test_asymmetric_configuration(self, net):
        net.set_link("a", "b", bandwidth=500.0, symmetric=False)
        assert net.link("a", "b").bandwidth == 500.0
        assert net.link("b", "a").bandwidth == 1000.0  # default

    def test_invalid_bandwidth_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.set_link("a", "b", bandwidth=0.0)

    def test_invalid_latency_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.set_link("a", "b", latency=-1.0)


class TestFailures:
    def test_unknown_node_unreachable(self, net):
        net.register("a", lambda e: b"")
        with pytest.raises(CoreUnreachableError):
            net.send(_envelope("a", "ghost"))

    def test_down_node_raises(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        net.set_node_down("b")
        with pytest.raises(CoreDownError):
            net.send(_envelope("a", "b"))
        net.set_node_down("b", down=False)
        assert net.send(_envelope("a", "b")) == b"reply:hello"

    def test_link_down(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        net.set_link("a", "b", up=False)
        with pytest.raises(CoreUnreachableError):
            net.send(_envelope("a", "b"))

    def test_partition_blocks_cross_traffic(self, net):
        _echo_node(net, "b")
        _echo_node(net, "c")
        net.register("a", lambda e: b"")
        net.partition({"a", "c"}, {"b"})
        with pytest.raises(CoreUnreachableError):
            net.send(_envelope("a", "b"))
        assert net.send(_envelope("a", "c")) == b"reply:hello"

    def test_heal_partition(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        net.partition({"a"}, {"b"})
        net.heal_partition()
        assert net.send(_envelope("a", "b")) == b"reply:hello"

    def test_node_in_two_partitions_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.partition({"a"}, {"a", "b"})

    def test_duplicate_registration_rejected(self, net):
        net.register("a", lambda e: b"")
        with pytest.raises(DuplicateCoreError):
            net.register("a", lambda e: b"")

    def test_deregistered_node_gone(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        net.deregister("b")
        with pytest.raises(CoreUnreachableError):
            net.send(_envelope("a", "b"))


class TestAccounting:
    def test_global_stats(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        net.send(_envelope("a", "b", b"12345"))
        assert net.stats.messages == 2  # request + reply
        assert net.stats.bytes > 5
        assert net.stats.seconds > 0.2
        assert net.stats.by_kind[MessageKind.ADMIN_QUERY] == 2

    def test_per_link_stats(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        net.send(_envelope("a", "b", b"12345"))
        assert net.link_stats("a", "b").messages == 1
        assert net.link_stats("b", "a").messages == 1

    def test_trace_records_descriptions(self, net):
        _echo_node(net, "b")
        net.register("a", lambda e: b"")
        net.send(_envelope("a", "b"))
        assert any("a -> b" in line for line in net.trace)

    def test_transfer_time_prediction(self, net):
        assert net.transfer_time("a", "b", 1000) == pytest.approx(1.1)
        assert net.transfer_time("x", "x", 10**6) == 0.0
