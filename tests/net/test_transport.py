"""The abstract Transport protocol, adapter, capabilities, and group."""

from __future__ import annotations

import pytest

from repro.errors import TransportCapabilityError, TransportError
from repro.net import (
    CAP_BANDWIDTH,
    CAP_NODE_DOWN,
    CAP_VIRTUAL_TIME,
    Envelope,
    MessageKind,
    SimTransport,
    Transport,
    TransportGroup,
)
from repro.net.rpc import RpcEndpoint
from repro.net.simnet import SimNetwork, as_transport
from repro.net.transport import LinkStats, NetworkStats, NodeHandler
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler


def fresh_sim() -> SimTransport:
    return SimTransport(Scheduler(VirtualClock()))


def envelope(src: str, dst: str, payload: bytes = b"x") -> Envelope:
    return Envelope(src=src, dst=dst, kind=MessageKind.HEARTBEAT, payload=payload)


class MinimalTransport(Transport):
    """The smallest conforming backend: no chaos capabilities at all."""

    def __init__(self) -> None:
        self.scheduler = Scheduler(VirtualClock())
        self.stats = NetworkStats()
        from repro.net.transport import TraceLog

        self.trace = TraceLog(8)
        self._handlers: dict[str, NodeHandler] = {}

    def register(self, name, handler):
        self._handlers[name] = handler

    def deregister(self, name):
        self._handlers.pop(name, None)

    def send(self, envelope, timeout=None):
        return self._handlers[envelope.dst](envelope)

    def post(self, envelope):
        self._handlers[envelope.dst](envelope)

    def nodes(self):
        return sorted(self._handlers)

    def is_up(self, name):
        return name in self._handlers

    def can_reach(self, src, dst):
        return src in self._handlers and dst in self._handlers

    def link_stats(self, src, dst):
        return LinkStats()


class TestProtocol:
    def test_sim_transport_is_a_transport(self):
        assert isinstance(fresh_sim(), Transport)

    def test_bare_simnetwork_is_not_a_transport(self):
        assert not isinstance(SimNetwork(Scheduler(VirtualClock())), Transport)

    def test_sim_capabilities_include_virtual_time_and_bandwidth(self):
        net = fresh_sim()
        assert net.supports(CAP_VIRTUAL_TIME)
        assert net.supports(CAP_BANDWIDTH)

    def test_minimal_backend_serves_rpc(self):
        transport = MinimalTransport()
        transport.register("a", lambda env: b"pong")
        result = transport.send(envelope("b", "a"))
        assert result == b"pong"

    def test_unsupported_chaos_knob_raises_typed_error(self):
        transport = MinimalTransport()
        with pytest.raises(TransportCapabilityError):
            transport.set_node_down("a")
        with pytest.raises(TransportCapabilityError):
            transport.set_link("a", "b", bandwidth=10.0)
        with pytest.raises(TransportCapabilityError):
            transport.partition({"a"}, {"b"})

    def test_capability_error_is_a_transport_error(self):
        assert issubclass(TransportCapabilityError, TransportError)

    def test_send_timeout_param_is_accepted_by_simnet(self):
        net = fresh_sim()
        net.register("a", lambda env: b"ok")
        net.register("b", lambda env: b"ok")
        assert net.send(envelope("b", "a"), timeout=1.0) == b"ok"

    def test_reset_stats(self):
        net = fresh_sim()
        net.register("a", lambda env: b"ok")
        net.register("b", lambda env: b"ok")
        net.send(envelope("b", "a"))
        assert net.stats.messages > 0
        net.reset_stats()
        assert net.stats.messages == 0


class TestAdapter:
    def test_bare_simnetwork_warns_and_adapts(self):
        network = SimNetwork(Scheduler(VirtualClock()))
        with pytest.deprecated_call():
            adapted = as_transport(network)
        assert isinstance(adapted, Transport)
        assert adapted.network is network

    def test_transport_passes_through_unwrapped(self):
        net = fresh_sim()
        assert as_transport(net) is net

    def test_other_objects_are_rejected(self):
        with pytest.raises(TransportError):
            as_transport(object())

    def test_rpc_endpoint_accepts_bare_simnetwork(self):
        network = SimNetwork(Scheduler(VirtualClock()))
        with pytest.deprecated_call():
            endpoint = RpcEndpoint("a", network)
        RpcEndpoint("b", endpoint.transport)
        endpoint.register(MessageKind.HEARTBEAT, lambda src, payload: b"up")
        other = endpoint.transport
        reply = other.send(envelope("b", "a"))
        assert reply.endswith(b"up")

    def test_adapter_delegates_chaos_and_queries(self):
        network = SimNetwork(Scheduler(VirtualClock()))
        with pytest.deprecated_call():
            adapted = as_transport(network)
        adapted.register("a", lambda env: b"ok")
        adapted.register("b", lambda env: b"ok")
        adapted.set_node_down("a")
        assert not adapted.is_up("a")
        assert not adapted.can_reach("b", "a")
        adapted.set_node_down("a", down=False)
        assert adapted.is_up("a")
        assert adapted.nodes() == ["a", "b"]
        assert adapted.stats is network.stats


class TestTransportGroup:
    def build(self):
        hub_ab = fresh_sim()
        hub_c = SimTransport(hub_ab.scheduler)
        hub_ab.register("a", lambda env: b"from-a")
        hub_ab.register("b", lambda env: b"from-b")
        hub_c.register("c", lambda env: b"from-c")
        group = TransportGroup({"a": hub_ab, "b": hub_ab, "c": hub_c})
        return hub_ab, hub_c, group

    def test_empty_group_is_rejected(self):
        with pytest.raises(TransportError):
            TransportGroup({})

    def test_nodes_union(self):
        _ab, _c, group = self.build()
        assert group.nodes() == ["a", "b", "c"]

    def test_transports_deduplicates(self):
        hub_ab, hub_c, group = self.build()
        members = group.transports()
        assert len(members) == 2
        assert members[0] is hub_ab
        assert members[1] is hub_c

    def test_send_routes_via_source_hub(self):
        _ab, _c, group = self.build()
        assert group.send(envelope("a", "b")) == b"from-b"

    def test_send_from_unknown_node_fails(self):
        _ab, _c, group = self.build()
        with pytest.raises(TransportError):
            group.send(envelope("zz", "a"))

    def test_register_on_group_is_rejected(self):
        _ab, _c, group = self.build()
        with pytest.raises(TransportError):
            group.register("d", lambda env: b"")

    def test_stats_aggregate(self):
        hub_ab, _c, group = self.build()
        group.send(envelope("a", "b", b"12345"))
        assert group.stats.messages == hub_ab.stats.messages
        assert group.stats.bytes >= 5

    def test_reset_stats_broadcasts(self):
        _ab, _c, group = self.build()
        group.send(envelope("a", "b"))
        group.reset_stats()
        assert group.stats.messages == 0

    def test_chaos_broadcasts_to_members(self):
        hub_ab, hub_c, group = self.build()
        group.set_node_down("a")
        assert not hub_ab.is_up("a")
        assert not hub_c.is_up("a") or "a" not in hub_c.nodes()
        assert not group.is_up("a")
        group.set_node_down("a", down=False)
        assert group.is_up("a")

    def test_capabilities_intersect(self):
        _ab, _c, group = self.build()
        assert group.capabilities() == SimTransport.CAPABILITIES
        group_mixed = TransportGroup({"m": MinimalTransport()})
        assert group_mixed.capabilities() == frozenset()

    def test_is_up_for_foreign_node(self):
        _ab, _c, group = self.build()
        assert not group.is_up("unknown")
