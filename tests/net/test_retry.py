"""Tests for retry policies, call timeouts, and one-way error isolation."""

import pytest

from repro.errors import (
    ConfigurationError,
    CoreDownError,
    CoreUnreachableError,
    DeadlineExceededError,
    TransportError,
)
from repro.net.messages import MessageKind
from repro.net.retry import NO_RETRY, RetryPolicy
from repro.net.rpc import RpcEndpoint
from repro.net.simnet import SimTransport
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler


@pytest.fixture
def net():
    return SimTransport(Scheduler(VirtualClock()))


@pytest.fixture
def pair(net):
    a = RpcEndpoint("a", net)
    b = RpcEndpoint("b", net)
    return a, b


class TestRetryPolicyConfig:
    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, multiplier=2.0, max_delay=3.0)
        assert policy.delays() == [1.0, 2.0, 3.0, 3.0]

    def test_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.5)
        assert policy.delays() == policy.delays()  # jitter-free by design

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.delays() == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"max_delay": -0.1},
            {"deadline": 0.0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestRetryPolicyRun:
    def test_success_needs_no_clock(self, net):
        policy = RetryPolicy(max_attempts=3, base_delay=1.0)
        assert policy.run(net.scheduler, lambda: 42) == 42
        assert net.scheduler.clock.now() == 0.0

    def test_retry_observes_injected_revival(self, net):
        """The backoff sweep fires due timers, so a scheduled heal is seen."""
        calls = []

        def flaky():
            calls.append(net.scheduler.clock.now())
            if net.scheduler.clock.now() < 1.0:
                raise CoreUnreachableError("still down")
            return "reached"

        policy = RetryPolicy(max_attempts=4, base_delay=0.6, multiplier=1.0)
        assert policy.run(net.scheduler, flaky) == "reached"
        # Attempts at t=0 and t=0.6 failed; the one at t=1.2 landed.
        assert calls == [0.0, 0.6, pytest.approx(1.2)]

    def test_exhaustion_reraises_the_original_error(self, net):
        attempts = []

        def always_down():
            attempts.append(1)
            raise CoreDownError("gone for good")

        policy = RetryPolicy(max_attempts=3, base_delay=0.1)
        with pytest.raises(CoreDownError, match="gone for good"):
            policy.run(net.scheduler, always_down)
        assert len(attempts) == 3

    def test_deadline_bounds_total_time(self, net):
        attempts = []

        def always_down():
            attempts.append(net.scheduler.clock.now())
            raise CoreUnreachableError("down")

        # Delays of 1.0 each; the second retry would land at t=2.0 > 1.5.
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=1.0, deadline=1.5
        )
        with pytest.raises(CoreUnreachableError):
            policy.run(net.scheduler, always_down)
        assert attempts == [0.0, 1.0]

    def test_non_reachability_errors_are_not_retried(self, net):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("application bug")

        policy = RetryPolicy(max_attempts=5, base_delay=0.1)
        with pytest.raises(ValueError):
            policy.run(net.scheduler, broken)
        assert len(attempts) == 1

    def test_deadline_exceeded_not_retried_by_default(self, net):
        """Retrying after a timeout means at-least-once; it must be opt-in."""
        attempts = []

        def slow():
            attempts.append(1)
            raise DeadlineExceededError("too slow")

        policy = RetryPolicy(max_attempts=3, base_delay=0.1)
        with pytest.raises(DeadlineExceededError):
            policy.run(net.scheduler, slow)
        assert len(attempts) == 1

    def test_on_retry_observer_sees_each_backoff(self, net):
        observed = []

        def always_down():
            raise CoreUnreachableError("down")

        policy = RetryPolicy(max_attempts=3, base_delay=0.5, multiplier=2.0)
        with pytest.raises(CoreUnreachableError):
            policy.run(
                net.scheduler,
                always_down,
                on_retry=lambda attempt, delay, exc: observed.append((attempt, delay)),
            )
        assert observed == [(1, 0.5), (2, 1.0)]


class TestCallTimeouts:
    def test_slow_round_trip_raises_deadline_exceeded(self, net, pair):
        a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"ok")
        net.set_link("a", "b", latency=2.0)
        with pytest.raises(DeadlineExceededError):
            a.call("b", MessageKind.ADMIN_QUERY, b"", timeout=1.0)

    def test_fast_round_trip_is_unaffected(self, net, pair):
        a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"ok")
        assert a.call("b", MessageKind.ADMIN_QUERY, b"", timeout=1.0) == b"ok"

    def test_per_kind_timeout_configuration(self, net, pair):
        a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"ok")
        b.register(MessageKind.PROFILE_QUERY, lambda s, p: b"ok")
        net.set_link("a", "b", latency=2.0)
        a.set_timeout(1.0, MessageKind.ADMIN_QUERY)
        with pytest.raises(DeadlineExceededError):
            a.call("b", MessageKind.ADMIN_QUERY, b"")
        # Other kinds keep the (absent) default.
        assert a.call("b", MessageKind.PROFILE_QUERY, b"") == b"ok"

    def test_default_timeout_with_per_kind_override(self, pair):
        a, _b = pair
        a.set_timeout(1.0)
        a.set_timeout(9.0, MessageKind.MOVE_COMPLET)
        assert a.timeout_for(MessageKind.ADMIN_QUERY) == 1.0
        assert a.timeout_for(MessageKind.MOVE_COMPLET) == 9.0
        a.set_timeout(None, MessageKind.MOVE_COMPLET)
        assert a.timeout_for(MessageKind.MOVE_COMPLET) == 1.0

    def test_invalid_timeout_rejected(self, pair):
        a, _b = pair
        with pytest.raises(TransportError):
            a.set_timeout(0.0)


class TestCallRetries:
    def test_call_rides_through_a_revival(self, net, pair):
        a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"ok")
        net.set_node_down("b")
        net.scheduler.call_at(0.4, lambda: net.set_node_down("b", down=False))
        policy = RetryPolicy(max_attempts=3, base_delay=0.5)
        assert a.call("b", MessageKind.ADMIN_QUERY, b"", retry=policy) == b"ok"

    def test_per_kind_policy_applies_without_call_argument(self, net, pair):
        a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"ok")
        net.set_link("a", "b", up=False)
        net.scheduler.call_at(0.4, lambda: net.set_link("a", "b", up=True))
        a.set_retry_policy(RetryPolicy(max_attempts=2, base_delay=0.5))
        assert a.call("b", MessageKind.ADMIN_QUERY, b"") == b"ok"

    def test_without_policy_failure_is_immediate(self, net, pair):
        a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"ok")
        net.set_link("a", "b", up=False)
        with pytest.raises(CoreUnreachableError):
            a.call("b", MessageKind.ADMIN_QUERY, b"")
        assert net.scheduler.clock.now() == 0.0  # no backoff was taken

    def test_exhausted_retries_reraise(self, net, pair):
        a, b = pair
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"ok")
        net.set_node_down("b")
        policy = RetryPolicy(max_attempts=3, base_delay=0.25)
        with pytest.raises(CoreDownError):
            a.call("b", MessageKind.ADMIN_QUERY, b"", retry=policy)

    def test_on_retry_hook_reports_destination_and_kind(self, net, pair):
        a, b = pair
        observed = []
        a.on_retry = lambda dst, kind, attempt, delay, exc: observed.append(
            (dst, kind, attempt)
        )
        b.register(MessageKind.ADMIN_QUERY, lambda s, p: b"ok")
        net.set_node_down("b")
        net.scheduler.call_at(0.4, lambda: net.set_node_down("b", down=False))
        a.call(
            "b",
            MessageKind.ADMIN_QUERY,
            b"",
            retry=RetryPolicy(max_attempts=2, base_delay=0.5),
        )
        assert observed == [("b", MessageKind.ADMIN_QUERY, 1)]


class TestOneWayIsolation:
    def test_receiver_failure_does_not_reach_the_sender(self, pair):
        a, b = pair

        def broken(src, payload):
            raise RuntimeError("listener blew up")

        b.register(MessageKind.EVENT_NOTIFY, broken)
        a.post("b", MessageKind.EVENT_NOTIFY, b"event")  # must not raise

    def test_missing_handler_is_absorbed_too(self, pair):
        a, _b = pair
        a.post("b", MessageKind.EVENT_NOTIFY, b"event")  # must not raise

    def test_on_oneway_error_hook_fires_at_the_receiver(self, pair):
        a, b = pair
        seen = []

        def broken(src, payload):
            raise RuntimeError("listener blew up")

        b.register(MessageKind.EVENT_NOTIFY, broken)
        b.on_oneway_error = lambda envelope, error: seen.append(
            (envelope.src, envelope.kind, type(error).__name__)
        )
        a.post("b", MessageKind.EVENT_NOTIFY, b"event")
        assert seen == [("a", MessageKind.EVENT_NOTIFY, "RuntimeError")]

    def test_reachability_failures_still_surface_at_the_sender(self, net, pair):
        a, _b = pair
        net.set_link("a", "b", up=False)
        with pytest.raises(CoreUnreachableError):
            a.post("b", MessageKind.EVENT_NOTIFY, b"event")

    def test_request_reply_failures_still_propagate(self, pair):
        """Only *one-way* traffic absorbs receiver failures."""

        a, b = pair

        def broken(src, payload):
            raise RuntimeError("handler blew up")

        b.register(MessageKind.ADMIN_QUERY, broken)
        with pytest.raises(RuntimeError, match="handler blew up"):
            a.call("b", MessageKind.ADMIN_QUERY, b"")


class TestRemoteExceptionChaining:
    def test_remote_errors_carry_the_remote_core_name(self, pair):
        from repro.errors import RemoteInvocationError

        a, b = pair

        def broken(src, payload):
            raise ValueError("remote failure")

        b.register(MessageKind.ADMIN_QUERY, broken)
        try:
            a.call("b", MessageKind.ADMIN_QUERY, b"")
        except ValueError as exc:
            assert isinstance(exc.__cause__, RemoteInvocationError)
            assert "'b'" in str(exc.__cause__)
        else:  # pragma: no cover - the call must raise
            pytest.fail("expected the remote ValueError to re-raise locally")
