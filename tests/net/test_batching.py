"""Envelope batching over a wrapped transport: triggers, ordering, drops."""

from __future__ import annotations

import pytest

from repro.net import (
    BatchPolicy,
    BatchingTransport,
    Envelope,
    MessageKind,
    SimTransport,
)
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler


def one_way(src: str, dst: str, payload: bytes = b"x") -> Envelope:
    return Envelope(src=src, dst=dst, kind=MessageKind.EVENT_NOTIFY, payload=payload)


def request(src: str, dst: str, payload: bytes = b"q") -> Envelope:
    return Envelope(src=src, dst=dst, kind=MessageKind.ADMIN_QUERY, payload=payload)


@pytest.fixture
def sim():
    return SimTransport(Scheduler(VirtualClock()))


def batching(sim: SimTransport, **policy) -> BatchingTransport:
    return BatchingTransport(sim, BatchPolicy(**policy)) if policy else BatchingTransport(sim)


class Recorder:
    """A node handler remembering every envelope it saw, in order."""

    def __init__(self) -> None:
        self.seen: list[Envelope] = []

    def __call__(self, envelope: Envelope) -> bytes:
        self.seen.append(envelope)
        return b"ok"


class TestFlushTriggers:
    def test_posts_are_held_until_a_trigger(self, sim):
        transport = batching(sim, max_messages=8)
        received = Recorder()
        transport.register("a", Recorder())
        transport.register("b", received)
        transport.post(one_way("a", "b"))
        assert received.seen == []

    def test_count_trigger_flushes_full_queue(self, sim):
        transport = batching(sim, max_messages=4)
        received = Recorder()
        transport.register("a", Recorder())
        transport.register("b", received)
        for i in range(4):
            transport.post(one_way("a", "b", bytes([i])))
        assert [e.payload for e in received.seen] == [bytes([i]) for i in range(4)]
        assert transport.batch_stats.flush_triggers == {"count": 1}
        assert transport.batch_stats.batches == 1
        assert transport.batch_stats.batched_messages == 4

    def test_byte_budget_trigger(self, sim):
        transport = batching(sim, max_messages=100, max_bytes=1_000)
        received = Recorder()
        transport.register("a", Recorder())
        transport.register("b", received)
        transport.post(one_way("a", "b", b"p" * 600))
        assert received.seen == []
        transport.post(one_way("a", "b", b"q" * 600))
        assert len(received.seen) == 2
        assert transport.batch_stats.flush_triggers == {"bytes": 1}

    def test_deadline_trigger_under_virtual_clock(self, sim):
        transport = batching(sim, max_messages=100, max_delay=0.005)
        received = Recorder()
        transport.register("a", Recorder())
        transport.register("b", received)
        transport.post(one_way("a", "b", b"1"))
        transport.post(one_way("a", "b", b"2"))
        assert received.seen == []
        sim.scheduler.advance(0.005)
        assert [e.payload for e in received.seen] == [b"1", b"2"]
        assert transport.batch_stats.flush_triggers == {"deadline": 1}

    def test_single_message_flush_skips_the_wrapper(self, sim):
        transport = batching(sim, max_messages=100, max_delay=0.005)
        received = Recorder()
        transport.register("a", Recorder())
        transport.register("b", received)
        transport.post(one_way("a", "b"))
        sim.scheduler.advance(0.01)
        [envelope] = received.seen
        assert envelope.kind is MessageKind.EVENT_NOTIFY  # not BATCH
        assert transport.batch_stats.passthrough_posts == 1
        assert transport.batch_stats.batches == 0

    def test_wire_carries_one_batch_message(self, sim):
        transport = batching(sim, max_messages=8)
        transport.register("a", Recorder())
        transport.register("b", Recorder())
        for _ in range(8):
            transport.post(one_way("a", "b"))
        assert sim.stats.messages == 1
        assert sim.stats.by_kind[MessageKind.BATCH] == 1


class TestOrdering:
    def test_send_flushes_same_link_first(self, sim):
        transport = batching(sim, max_messages=100, max_delay=1.0)
        received = Recorder()
        transport.register("a", Recorder())
        transport.register("b", received)
        transport.post(one_way("a", "b", b"first"))
        transport.post(one_way("a", "b", b"second"))
        assert transport.send(request("a", "b", b"third")) == b"ok"
        assert [e.payload for e in received.seen] == [b"first", b"second", b"third"]

    def test_send_leaves_other_links_queued(self, sim):
        transport = batching(sim, max_messages=100, max_delay=1.0)
        b_received, c_received = Recorder(), Recorder()
        transport.register("a", Recorder())
        transport.register("b", b_received)
        transport.register("c", c_received)
        transport.post(one_way("a", "c", b"queued"))
        transport.send(request("a", "b"))
        assert c_received.seen == []
        assert len(b_received.seen) == 1

    def test_per_link_fifo_across_interleaved_posts(self, sim):
        transport = batching(sim, max_messages=3)
        b_received, c_received = Recorder(), Recorder()
        transport.register("a", Recorder())
        transport.register("b", b_received)
        transport.register("c", c_received)
        for i in range(3):
            transport.post(one_way("a", "b", b"b%d" % i))
            transport.post(one_way("a", "c", b"c%d" % i))
        assert [e.payload for e in b_received.seen] == [b"b0", b"b1", b"b2"]
        assert [e.payload for e in c_received.seen] == [b"c0", b"c1", b"c2"]

    def test_prebatched_envelopes_pass_straight_through(self, sim):
        from repro.net.serializer import PLAIN

        transport = batching(sim, max_messages=100)
        received = Recorder()
        transport.register("a", Recorder())
        transport.register("b", received)
        inner = [one_way("a", "b", b"m1"), one_way("a", "b", b"m2")]
        transport.post(
            Envelope(
                src="a", dst="b", kind=MessageKind.BATCH, payload=PLAIN.dumps(inner)
            )
        )
        # Delivered immediately (never re-queued) and unpacked at the node.
        assert [e.payload for e in received.seen] == [b"m1", b"m2"]


class TestFailureAndLifecycle:
    def test_flush_to_down_node_drops_quietly(self, sim):
        transport = batching(sim, max_messages=100, max_delay=1.0)
        transport.register("a", Recorder())
        transport.register("b", Recorder())
        transport.post(one_way("a", "b", b"1"))
        transport.post(one_way("a", "b", b"2"))
        sim.set_node_down("b")
        transport.flush_all()  # must not raise
        assert transport.batch_stats.dropped_messages == 2

    def test_handler_failure_does_not_poison_the_batch(self, sim):
        transport = batching(sim, max_messages=2)
        seen = []

        def flaky(envelope: Envelope) -> bytes:
            seen.append(envelope.payload)
            if envelope.payload == b"boom":
                raise RuntimeError("handler bug")
            return b""

        transport.register("a", Recorder())
        transport.register("b", flaky)
        transport.post(one_way("a", "b", b"boom"))
        transport.post(one_way("a", "b", b"fine"))
        assert seen == [b"boom", b"fine"]

    def test_deregister_flushes_pending_traffic(self, sim):
        transport = batching(sim, max_messages=100, max_delay=1.0)
        received = Recorder()
        transport.register("a", Recorder())
        transport.register("b", received)
        transport.post(one_way("a", "b", b"late"))
        transport.deregister("a")
        assert [e.payload for e in received.seen] == [b"late"]

    def test_close_flushes_pending_traffic(self, sim):
        transport = batching(sim, max_messages=100, max_delay=1.0)
        received = Recorder()
        transport.register("a", Recorder())
        transport.register("b", received)
        transport.post(one_way("a", "b", b"tail"))
        transport.close()
        assert [e.payload for e in received.seen] == [b"tail"]
        assert transport.batch_stats.flush_triggers.get("close", 0) == 0  # lone msg
        assert transport.batch_stats.passthrough_posts == 1


class TestDelegation:
    def test_stats_and_capabilities_are_the_inner_transports(self, sim):
        transport = batching(sim)
        assert transport.stats is sim.stats
        assert transport.capabilities() == sim.capabilities()

    def test_nodes_and_reachability_delegate(self, sim):
        transport = batching(sim)
        transport.register("a", Recorder())
        transport.register("b", Recorder())
        assert transport.nodes() == ["a", "b"]
        assert transport.is_up("a")
        assert transport.can_reach("a", "b")
        sim.set_node_down("b")
        assert not transport.is_up("b")

    def test_stats_snapshot_shape(self, sim):
        transport = batching(sim, max_messages=2)
        transport.register("a", Recorder())
        transport.register("b", Recorder())
        transport.post(one_way("a", "b"))
        transport.post(one_way("a", "b"))
        snap = transport.batch_stats.snapshot()
        assert snap["batches"] == 1
        assert snap["batched_messages"] == 2
        assert snap["mean_occupancy"] == 2.0
        assert snap["flush_triggers"] == {"count": 1}
