"""Tests for the naming service."""

import pytest

from repro.errors import NameAlreadyBoundError, NameNotFoundError
from repro.cluster.workload import Counter, Echo


class TestLocalTable:
    def test_bind_and_lookup(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        cluster["alpha"].bind("the-echo", echo)
        found = cluster["alpha"].lookup("the-echo")
        assert found.ping() == "x"

    def test_double_bind_rejected(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        cluster["alpha"].bind("n", echo)
        with pytest.raises(NameAlreadyBoundError):
            cluster["alpha"].bind("n", echo)

    def test_replace_allowed(self, cluster):
        a = Echo("a", _core=cluster["alpha"])
        b = Echo("b", _core=cluster["alpha"])
        cluster["alpha"].bind("n", a)
        cluster["alpha"].bind("n", b, replace=True)
        assert cluster["alpha"].lookup("n").ping() == "b"

    def test_unbind(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        naming = cluster["alpha"].naming
        naming.bind("n", echo)
        naming.unbind("n")
        with pytest.raises(NameNotFoundError):
            naming.lookup("n")

    def test_unbind_missing_rejected(self, cluster):
        with pytest.raises(NameNotFoundError):
            cluster["alpha"].naming.unbind("ghost")

    def test_names_sorted(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        naming = cluster["alpha"].naming
        naming.bind("zz", echo)
        naming.bind("aa", echo)
        assert naming.names() == ["aa", "zz"]
        assert len(naming) == 2


class TestRemoteAccess:
    def test_lookup_at(self, cluster):
        echo = Echo("findme", _core=cluster["alpha"])
        cluster["alpha"].bind("svc", echo)
        found = cluster["beta"].naming.lookup_at("alpha", "svc")
        assert found.ping() == "findme"
        # The returned stub is wired to beta, not alpha.
        assert found._fargo_core is cluster["beta"]

    def test_bind_at(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        cluster["alpha"].naming.bind_at("beta", "remote-name", echo)
        assert "remote-name" in cluster["beta"].naming.names()
        assert cluster["beta"].lookup("remote-name").ping() == "x"

    def test_unbind_at(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        cluster["alpha"].naming.bind_at("beta", "n", echo)
        cluster["alpha"].naming.unbind_at("beta", "n")
        assert cluster["beta"].naming.names() == []

    def test_names_at(self, cluster):
        echo = Echo("x", _core=cluster["beta"], _at="beta")
        cluster["beta"].bind("b-name", echo)
        assert cluster["alpha"].naming.names_at("beta") == ["b-name"]

    def test_lookup_at_missing(self, cluster):
        with pytest.raises(NameNotFoundError):
            cluster["alpha"].naming.lookup_at("beta", "ghost")


class TestClusterWideLookup:
    def test_lookup_anywhere_prefers_local(self, cluster):
        local = Echo("local", _core=cluster["alpha"])
        remote = Echo("remote", _core=cluster["beta"], _at="beta")
        cluster["alpha"].bind("svc", local)
        cluster["beta"].bind("svc", remote)
        assert cluster["alpha"].naming.lookup_anywhere("svc").ping() == "local"

    def test_lookup_anywhere_searches_remote(self, cluster3):
        echo = Echo("x", _core=cluster3["gamma"], _at="gamma")
        cluster3["gamma"].bind("hidden", echo)
        found = cluster3["alpha"].naming.lookup_anywhere("hidden")
        assert found.ping() == "x"

    def test_lookup_anywhere_missing(self, cluster):
        with pytest.raises(NameNotFoundError):
            cluster["alpha"].naming.lookup_anywhere("nowhere")

    def test_lookup_anywhere_skips_dead_cores(self, cluster3):
        echo = Echo("x", _core=cluster3["gamma"], _at="gamma")
        cluster3["gamma"].bind("svc", echo)
        cluster3.network.set_node_down("beta")
        found = cluster3["alpha"].naming.lookup_anywhere("svc")
        assert found.ping() == "x"


class TestNamesFollowMovement:
    def test_binding_tracks_moved_complet(self, cluster):
        """A name keeps resolving after its complet migrates."""
        counter = Counter(0, _core=cluster["alpha"])
        cluster["alpha"].bind("ctr", counter)
        cluster.move(counter, "beta")
        found = cluster["alpha"].lookup("ctr")
        assert found.increment() == 1

    def test_remote_lookup_of_moved_complet(self, cluster3):
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3["alpha"].bind("ctr", counter)
        cluster3.move(counter, "gamma")
        found = cluster3["beta"].naming.lookup_at("alpha", "ctr")
        assert found.increment() == 1
