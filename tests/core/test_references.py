"""Tests for the reference handler: materialization, location, pointers."""

import pytest

from repro.complet.relocators import Link, Pull
from repro.complet.tokens import RefToken, StampToken
from repro.errors import DanglingReferenceError, SerializationError, StampResolutionError
from repro.cluster.workload import Counter, Echo, Printer, Printer_


class TestMaterialization:
    def test_ref_token_creates_tracker(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        tracker = echo._fargo_tracker
        token = RefToken(
            tracker.target_id, tracker.anchor_ref, tracker.address, Link()
        )
        stub = cluster["beta"].references.materialize(token)
        assert stub.ping() == "x"
        assert stub._fargo_core is cluster["beta"]

    def test_materialize_reuses_existing_tracker(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        tracker = echo._fargo_tracker
        token = RefToken(tracker.target_id, tracker.anchor_ref, tracker.address, Link())
        s1 = cluster["beta"].references.materialize(token)
        s2 = cluster["beta"].references.materialize(token)
        assert s1._fargo_tracker is s2._fargo_tracker
        assert cluster["beta"].repository.tracker_count() == 1

    def test_relocator_preserved(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        tracker = echo._fargo_tracker
        token = RefToken(tracker.target_id, tracker.anchor_ref, tracker.address, Pull())
        stub = cluster["beta"].references.materialize(token)
        assert stub._fargo_meta.type_name == "pull"

    def test_stamp_token_resolution(self, cluster):
        Printer("here", _core=cluster["alpha"])
        token = StampToken("repro.cluster.workload:Printer_", Link())
        stub = cluster["alpha"].references.materialize(token)
        assert stub.location() == "here"

    def test_stamp_token_failure(self, cluster):
        token = StampToken("repro.cluster.workload:Printer_", Link())
        with pytest.raises(StampResolutionError):
            cluster["alpha"].references.materialize(token)

    def test_stamp_unresolvable_class(self, cluster):
        token = StampToken("nonexistent.module:Nothing_", Link())
        with pytest.raises(StampResolutionError):
            cluster["alpha"].references.materialize(token)

    def test_unknown_token_rejected(self, cluster):
        with pytest.raises(SerializationError):
            cluster["alpha"].references.materialize({"weird": 1})


class TestLocation:
    def test_locate_local(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        assert cluster["alpha"].references.locate(echo._fargo_tracker) == "alpha"

    def test_locate_dangling_raises(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        cluster["alpha"].repository.destroy(echo._fargo_target_id)
        with pytest.raises(DanglingReferenceError):
            cluster["alpha"].references.locate(echo._fargo_tracker)

    def test_locate_shortens(self, cluster3):
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move_via_host(counter, "beta")
        cluster3.move_via_host(counter, "gamma")
        tracker = counter._fargo_tracker
        assert tracker.next_hop.core == "beta"
        cluster3["alpha"].references.locate(tracker)
        assert tracker.next_hop.core == "gamma"


class TestPointerBookkeeping:
    def test_shorten_updates_both_sides(self, cluster3):
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move_via_host(counter, "beta")
        cluster3.move_via_host(counter, "gamma")
        alpha_tracker = counter._fargo_tracker
        beta_tracker = cluster3["beta"].repository.existing_tracker(
            counter._fargo_target_id
        )
        assert alpha_tracker.address in beta_tracker.remote_pointers
        counter.increment()  # shortens alpha -> gamma
        assert alpha_tracker.address not in beta_tracker.remote_pointers
        gamma_tracker = cluster3["gamma"].repository.existing_tracker(
            counter._fargo_target_id
        )
        assert alpha_tracker.address in gamma_tracker.remote_pointers

    def test_lazy_mode_skips_updates(self, make_cluster):
        lazy = make_cluster(["a", "b", "c"], eager_pointer_updates=False)
        counter = Counter(0, _core=lazy["a"])
        lazy.move_via_host(counter, "b")
        b_tracker = lazy["b"].repository.existing_tracker(counter._fargo_target_id)
        # Arrival pre-registration still happens (it rides the payload),
        # but shortening housekeeping does not.
        lazy.move_via_host(counter, "c")
        counter.increment()
        assert counter._fargo_tracker.address not in {
            p for p in b_tracker.remote_pointers if p.core == "a"
        } or not lazy["a"].eager_pointer_updates

    def test_pointer_update_to_dead_core_swallowed(self, cluster):
        """Pointer housekeeping is best-effort: dead peers are skipped."""
        from repro.complet.tracker import TrackerAddress

        counter = Counter(0, _core=cluster["alpha"])
        cluster.network.set_node_down("beta")
        cluster["alpha"].references._notify_pointer(
            TrackerAddress("beta", 1), counter._fargo_tracker.address, register=True
        )  # must not raise

    def test_chain_breaks_when_intermediate_core_dies(self, cluster3):
        """The known weakness of tracker chains (the paper's future work
        proposes location-independent naming precisely because of this):
        an invocation routed through a dead intermediate Core fails."""
        from repro.errors import CoreDownError

        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move_via_host(counter, "beta")
        cluster3.move_via_host(counter, "gamma")
        cluster3.network.set_node_down("beta")
        with pytest.raises(CoreDownError):
            counter.increment()
        # Shortened references made beforehand would have survived:
        cluster3.network.set_node_down("beta", down=False)
        counter.increment()  # shortens alpha -> gamma
        cluster3.network.set_node_down("beta")
        assert counter.increment() == 2  # no longer routed through beta
