"""Tests for the typed CoreAdmin facade over the stringly-typed admin op."""

import pytest

from repro.cluster.workload import Client, Counter, Echo, Server
from repro.complet.stub import stub_target_id
from repro.core.admin import CoreAdmin
from repro.errors import FarGoError


@pytest.fixture
def admin_rig(cluster):
    echo = Echo("x", _core=cluster["alpha"])
    return cluster, echo, cluster.admin("alpha")


class TestFacadeBasics:
    def test_cluster_hands_out_typed_handles(self, admin_rig):
        cluster, _echo, admin = admin_rig
        assert isinstance(admin, CoreAdmin)
        assert isinstance(cluster.admin("beta"), CoreAdmin)

    def test_snapshot_and_complets(self, admin_rig):
        cluster, echo, admin = admin_rig
        snapshot = admin.snapshot()
        assert snapshot["core"] == "alpha"
        assert str(stub_target_id(echo)) in admin.complets()

    def test_remote_target_via_another_core(self, admin_rig):
        cluster, echo, _admin = admin_rig
        remote_view = cluster.admin("alpha", via="beta")
        assert remote_view.complets() == cluster.admin("alpha").complets()

    def test_move_through_facade(self, admin_rig):
        cluster, echo, admin = admin_rig
        admin.move(str(stub_target_id(echo)), "beta")
        assert cluster.locate(echo) == "beta"

    def test_references_and_retype(self, cluster):
        server = Server(_core=cluster["beta"], _at="beta")
        client = Client(server, _core=cluster["alpha"])
        admin = cluster.admin("alpha")
        cid = str(stub_target_id(client))
        refs = admin.references(cid)
        assert any(r["target"] == str(stub_target_id(server)) for r in refs)
        assert admin.retype(cid, str(stub_target_id(server)), "pull")
        refs = admin.references(cid)
        assert any(r["type"] == "pull" for r in refs)

    def test_collect_trackers_returns_count(self, admin_rig):
        _cluster, _echo, admin = admin_rig
        assert isinstance(admin.collect_trackers(), int)

    def test_unknown_operation_still_guarded(self, admin_rig):
        cluster, _echo, admin = admin_rig
        with pytest.raises(FarGoError):
            admin._op("no_such_operation")


class TestMonitoringSurface:
    def test_watch_and_unwatch(self, cluster):
        Echo("x", _core=cluster["alpha"])
        admin = cluster.admin("alpha")
        fired = []
        cluster["alpha"].events.subscribe("completLoad>0.5", fired.append)
        watch_id = admin.watch("completLoad", ">", 0.5, interval=1.0)
        cluster.advance(2.0)
        assert fired
        admin.unwatch(watch_id)

    def test_services_and_profiles(self, admin_rig):
        cluster, _echo, admin = admin_rig
        assert "completLoad" in admin.services()
        assert admin.profile_instant("completLoad") == 1.0
        with cluster["alpha"].profile("completLoad", interval=1.0):
            cluster.advance(2.0)
            history = admin.profile_history("completLoad")
        assert [raw for _, raw in history] == [1.0, 1.0]

    def test_metrics_and_spans_surface(self, admin_rig):
        cluster, echo, admin = admin_rig
        admin.set_tracing(True)
        echo.ping()
        spans = admin.spans()
        assert spans and all("span_id" in s for s in spans)
        metrics = admin.metrics()
        assert metrics["core"] == "alpha"
        assert metrics["counters"]["invocation.executed"] >= 1.0
        admin.clear_spans()
        assert admin.spans() == []
        admin.set_tracing(False)
        echo.ping()
        assert admin.spans() == []


class TestLegacyPathStillWorks:
    def test_stringly_admin_op_unchanged(self, admin_rig):
        """The facade wraps — not replaces — the wire-level admin op."""
        cluster, echo, _admin = admin_rig
        snapshot = cluster["beta"].admin("alpha", "snapshot")
        assert snapshot["core"] == "alpha"
