"""Tests for the Core API surface: instantiation, admin, shutdown."""

import pytest

from repro.errors import CompletError, CoreUnreachableError
from repro.cluster.workload import Counter, Counter_, Echo, Echo_


class TestInstantiation:
    def test_instantiate_local(self, cluster):
        stub = cluster["alpha"].instantiate(Echo_, "tag")
        assert stub.ping() == "tag"
        assert cluster.locate(stub) == "alpha"

    def test_instantiate_remote(self, cluster):
        stub = cluster["alpha"].instantiate(Echo_, "far", at="beta")
        assert cluster.locate(stub) == "beta"
        assert stub.ping() == "far"

    def test_remote_instantiation_kwargs(self, cluster):
        stub = cluster["alpha"].instantiate(Counter_, start=7, at="beta")
        assert stub.read() == 7


class TestAdminSurface:
    def test_snapshot(self, cluster):
        cluster["alpha"].instantiate(Echo_, "x")
        snap = cluster["alpha"].snapshot()
        assert snap["core"] == "alpha"
        assert len(snap["complets"]) == 1
        assert snap["complets"][0]["type"] == "Echo"

    def test_remote_snapshot(self, cluster):
        cluster["beta"].instantiate(Echo_, "x")
        snap = cluster["alpha"].admin("beta", "snapshot")
        assert snap["core"] == "beta"
        assert len(snap["complets"]) == 1

    def test_admin_complets(self, cluster):
        stub = cluster["alpha"].instantiate(Echo_, "x")
        listed = cluster["beta"].admin("alpha", "complets")
        assert listed == [str(stub._fargo_target_id)]

    def test_admin_move(self, cluster):
        stub = cluster["alpha"].instantiate(Counter_, 0)
        cluster["beta"].admin(
            "alpha", "move", complet=str(stub._fargo_target_id), destination="beta"
        )
        assert cluster.locate(stub) == "beta"

    def test_admin_move_unknown(self, cluster):
        with pytest.raises(CompletError):
            cluster["beta"].admin("alpha", "move", complet="ghost", destination="beta")

    def test_admin_references_and_retype(self, cluster):
        from tests.anchors import Holder_

        echo = cluster["alpha"].instantiate(Echo_, "e")
        holder = cluster["alpha"].instantiate(Holder_, echo)
        hid = str(holder._fargo_target_id)
        rows = cluster["beta"].admin("alpha", "references", complet=hid)
        assert len(rows) == 1
        assert rows[0]["type"] == "link"
        cluster["beta"].admin(
            "alpha", "retype", complet=hid, target=rows[0]["target"], type="pull"
        )
        rows = cluster["beta"].admin("alpha", "references", complet=hid)
        assert rows[0]["type"] == "pull"

    def test_admin_retype_unknown_target(self, cluster):
        echo = cluster["alpha"].instantiate(Echo_, "e")
        with pytest.raises(CompletError):
            cluster["alpha"].admin(
                "alpha",
                "retype",
                complet=str(echo._fargo_target_id),
                target="ghost",
                type="pull",
            )

    def test_admin_services_and_profile(self, cluster):
        services = cluster["alpha"].admin("beta", "services")
        assert "completLoad" in services
        value = cluster["alpha"].admin(
            "beta", "profile_instant", service="completLoad"
        )
        assert value == 0.0

    def test_admin_unknown_op(self, cluster):
        with pytest.raises(CompletError):
            cluster["alpha"].admin("beta", "fry")

    def test_admin_watch_and_unwatch(self, cluster):
        watch_id = cluster["alpha"].admin(
            "beta", "watch", service="completLoad", op=">", threshold=0.5
        )
        assert cluster["beta"].monitor.active_watches() == 1
        cluster["alpha"].admin("beta", "unwatch", watch_id=watch_id)
        assert cluster["beta"].monitor.active_watches() == 0


class TestShutdown:
    def test_shutdown_leaves_network(self, cluster):
        cluster["beta"].shutdown()
        with pytest.raises(CoreUnreachableError):
            cluster["alpha"].admin("beta", "snapshot")

    def test_shutdown_stops_profiling(self, cluster):
        cluster["alpha"].profile_start("completLoad")
        cluster["alpha"].shutdown()
        assert cluster["alpha"].profiler.active_profiles() == 0
        assert cluster.scheduler.pending == 0

    def test_shutdown_listener_can_rescue_complets(self, cluster):
        """The reliability pattern: evacuate on coreShutdown."""
        stub = cluster["alpha"].instantiate(Counter_, 5)

        def rescue(event):
            anchor = cluster["alpha"].repository.get(stub._fargo_target_id)
            cluster["alpha"].move(anchor, "beta")

        cluster["alpha"].events.subscribe("coreShutdown", rescue)
        cluster["alpha"].shutdown()
        assert len(cluster["beta"].repository) == 1
        rescued = cluster.stub_at("beta", stub)
        assert rescued.read() == 5

    def test_repr(self, cluster):
        assert "alpha" in repr(cluster["alpha"])
        cluster["alpha"].shutdown()
        assert "down" in repr(cluster["alpha"])


class TestDeadCoreGuards:
    def test_instantiate_on_dead_core_rejected(self, cluster):
        from repro.errors import CoreDownError

        cluster["alpha"].shutdown()
        with pytest.raises(CoreDownError):
            cluster["alpha"].instantiate(Echo_, "x")

    def test_move_via_dead_core_rejected(self, cluster):
        from repro.errors import CoreDownError

        counter = cluster["alpha"].instantiate(Counter_, 0)
        cluster["alpha"].shutdown()
        with pytest.raises(CoreDownError):
            cluster["alpha"].move(counter, "beta")
