"""Tests for the Complet Repository."""

import pytest

from repro.errors import CompletError
from repro.cluster.workload import Counter, Counter_, Echo, Echo_, Printer_


class TestCompletLifecycle:
    def test_install_new_assigns_identity(self, cluster):
        repo = cluster["alpha"].repository
        tracker = repo.install_new(Echo_, ("t",), {})
        assert tracker.is_local
        anchor = tracker.local_anchor
        assert anchor.complet_id.birth_core == "alpha"
        assert repo.hosts(anchor.complet_id)

    def test_serials_increase(self, cluster):
        repo = cluster["alpha"].repository
        t1 = repo.install_new(Echo_, ("a",), {})
        t2 = repo.install_new(Echo_, ("b",), {})
        assert t2.target_id.serial > t1.target_id.serial

    def test_double_install_rejected(self, cluster):
        repo = cluster["alpha"].repository
        tracker = repo.install_new(Echo_, ("t",), {})
        with pytest.raises(CompletError):
            repo.adopt(tracker.local_anchor)

    def test_adopt_preserves_identity(self, cluster):
        alpha, beta = cluster["alpha"].repository, cluster["beta"].repository
        tracker = alpha.install_new(Echo_, ("t",), {})
        anchor = alpha.release(tracker.target_id)
        beta_tracker = beta.adopt(anchor)
        assert beta_tracker.target_id == tracker.target_id
        assert beta_tracker.target_id.birth_core == "alpha"

    def test_release_keeps_tracker(self, cluster):
        repo = cluster["alpha"].repository
        tracker = repo.install_new(Echo_, ("t",), {})
        repo.release(tracker.target_id)
        assert repo.existing_tracker(tracker.target_id) is tracker
        assert not repo.hosts(tracker.target_id)

    def test_release_unknown_rejected(self, cluster):
        from repro.util.ids import CompletId

        with pytest.raises(CompletError):
            cluster["alpha"].repository.release(CompletId("x", 99))

    def test_destroy_dangles_tracker(self, cluster):
        repo = cluster["alpha"].repository
        tracker = repo.install_new(Echo_, ("t",), {})
        repo.destroy(tracker.target_id)
        assert tracker.is_dangling

    def test_len_counts_hosted(self, cluster):
        repo = cluster["alpha"].repository
        assert len(repo) == 0
        repo.install_new(Echo_, ("a",), {})
        repo.install_new(Counter_, (), {})
        assert len(repo) == 2


class TestLookups:
    def test_find_by_type(self, cluster):
        repo = cluster["alpha"].repository
        repo.install_new(Echo_, ("a",), {})
        repo.install_new(Printer_, ("site",), {})
        assert len(repo.find_by_type(Echo_)) == 1
        assert len(repo.find_by_type(Printer_)) == 1
        assert len(repo.find_by_type(Counter_)) == 0

    def test_find_by_type_ordered_by_serial(self, cluster):
        repo = cluster["alpha"].repository
        first = repo.install_new(Echo_, ("1",), {})
        repo.install_new(Echo_, ("2",), {})
        found = repo.find_by_type(Echo_)
        assert found[0].complet_id == first.target_id

    def test_find_by_str(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        repo = cluster["alpha"].repository
        cid = echo._fargo_target_id
        assert repo.find_by_str(str(cid)) is not None
        assert repo.find_by_str(cid.short()) is not None
        assert repo.find_by_str("nonsense") is None


class TestTrackerTable:
    def test_one_tracker_per_target(self, cluster):
        """§3.1: a single tracker per target complet per Core."""
        repo = cluster["alpha"].repository
        tracker = repo.install_new(Echo_, ("t",), {})
        again = repo.tracker_for(tracker.target_id, tracker.anchor_ref)
        assert again is tracker
        assert repo.tracker_count() == 1

    def test_tracker_by_serial(self, cluster):
        repo = cluster["alpha"].repository
        tracker = repo.install_new(Echo_, ("t",), {})
        assert repo.tracker_by_serial(tracker.tracker_id.serial) is tracker
        assert repo.tracker_by_serial(999) is None

    def test_collect_skips_referenced(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])  # live stub holds tracker
        assert cluster["alpha"].repository.collect_trackers() == 0

    def test_collect_counts_cumulative(self, cluster3):
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move_via_host(counter, "beta")
        cluster3.move_via_host(counter, "gamma")
        counter.increment()
        repo = cluster3["beta"].repository
        removed = repo.collect_trackers()
        assert repo.collected_trackers == removed
