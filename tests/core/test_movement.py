"""Tests for the movement unit: the mobility protocol of §3.3."""

import pytest

from repro.errors import CompletError, MovementDeniedError
from repro.net.messages import MessageKind
from repro.cluster.workload import Counter, DataSource, Echo, Worker
from tests.anchors import Holder, Probe


class TestBasicMovement:
    def test_state_travels(self, cluster):
        counter = Counter(10, _core=cluster["alpha"])
        counter.increment(5)
        cluster.move(counter, "beta")
        assert counter.read() == 15
        assert cluster.locate(counter) == "beta"

    def test_repositories_updated(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        cluster.move(counter, "beta")
        assert len(cluster["alpha"].repository) == 0
        assert len(cluster["beta"].repository) == 1

    def test_move_to_same_core_is_noop(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        messages = cluster.stats.messages
        cluster.move(counter, "alpha")
        assert cluster.stats.messages == messages
        assert cluster.locate(counter) == "alpha"

    def test_move_by_complet_id(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        cluster["alpha"].move(counter._fargo_target_id, "beta")
        assert cluster.locate(counter) == "beta"

    def test_move_by_anchor(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(counter._fargo_target_id)
        cluster["alpha"].move(anchor, "beta")
        assert cluster.locate(counter) == "beta"

    def test_move_foreign_anchor_denied(self, cluster):
        from repro.cluster.workload import Counter_

        with pytest.raises(MovementDeniedError):
            cluster["alpha"].move(Counter_(0), "beta")

    def test_move_unknown_target_rejected(self, cluster):
        with pytest.raises(CompletError):
            cluster["alpha"].move("not-a-complet", "beta")


class TestRemoteInitiatedMoves:
    def test_move_forwarded_to_host(self, cluster3):
        """Any Core can initiate a move of any complet (MOVE_REQUEST)."""
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        # The stub is wired to alpha; moving again forwards to beta.
        cluster3.move(counter, "gamma")
        assert cluster3.locate(counter) == "gamma"
        assert counter.increment() == 1

    def test_forwarded_move_to_current_host_is_noop(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        cluster.move(counter, "beta")
        cluster.move(counter, "beta")  # already there
        assert cluster.locate(counter) == "beta"

    def test_chased_move_through_stale_tracker(self, cluster3):
        """A MOVE_REQUEST that arrives after the complet left is chased."""
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move_via_host(counter, "beta")
        cluster3.move_via_host(counter, "gamma")
        # alpha's tracker still says beta; the request is forwarded twice.
        cluster3["alpha"].move(counter._fargo_target_id, "alpha")
        assert cluster3.locate(counter) == "alpha"


class TestGroupMovement:
    def test_group_single_message(self, cluster):
        """One MOVE_COMPLET round trip no matter how many complets move."""
        from repro.complet.relocators import Pull
        from repro.core.core import Core

        members = [Counter(i, _core=cluster["alpha"]) for i in range(5)]
        head = Holder(None, _core=cluster["alpha"])
        head_anchor = cluster["alpha"].repository.get(head._fargo_target_id)
        head_anchor.refs = list(members)
        for stub in head_anchor.refs:
            Core.get_meta_ref(stub).set_relocator(Pull())
        before = cluster.stats.by_kind[MessageKind.MOVE_COMPLET]
        cluster.move(head, "beta")
        assert cluster.stats.by_kind[MessageKind.MOVE_COMPLET] - before == 2
        for stub in members:
            assert cluster.locate(stub) == "beta"

    def test_intra_group_references_stay_wired(self, cluster):
        """Mutual references between group members survive the move."""
        from repro.complet.relocators import Pull
        from repro.core.core import Core

        echo = Echo("inner", _core=cluster["alpha"])
        holder = Holder(echo, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(holder._fargo_target_id)
        Core.get_meta_ref(anchor.ref).set_relocator(Pull())
        cluster.move(holder, "beta")
        assert holder.call_ref() == "inner"
        # The call is local at beta: no INVOKE messages crossed the wire.
        invokes = cluster.stats.by_kind[MessageKind.INVOKE]
        holder.call_ref()
        assert cluster.stats.by_kind[MessageKind.INVOKE] == invokes + 2  # only outer hop


class TestIncomingReferences:
    def test_incoming_refs_keep_working(self, cluster3):
        """References held by third parties survive the move (§3.3)."""
        counter = Counter(0, _core=cluster3["alpha"])
        gamma_ref = cluster3.stub_at("gamma", counter)
        cluster3.move(counter, "beta")
        assert gamma_ref.increment() == 1

    def test_outgoing_refs_keep_working(self, cluster3):
        source = DataSource(100, _core=cluster3["gamma"])
        worker = Worker(source, _core=cluster3["alpha"])
        cluster3.move(worker, "beta")
        assert worker.work(1) == 100

    def test_dest_registers_source_pointer(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        alpha_tracker = counter._fargo_tracker
        cluster.move(counter, "beta")
        beta_tracker = cluster["beta"].repository.existing_tracker(
            counter._fargo_target_id
        )
        assert alpha_tracker.address in beta_tracker.remote_pointers


class TestAbortedMoves:
    def test_unmarshalable_closure_aborts_cleanly(self, cluster):
        """A move that cannot marshal leaves the complet fully usable."""
        from repro.errors import SerializationError

        counter = Counter(5, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(counter._fargo_target_id)
        anchor.handle = open("/dev/null", "rb")
        try:
            with pytest.raises(SerializationError):
                cluster.move(counter, "beta")
        finally:
            anchor.handle.close()
        del anchor.handle
        assert cluster.locate(counter) == "alpha"
        assert counter.increment() == 6
        cluster.move(counter, "beta")  # works once the handle is gone
        assert cluster.locate(counter) == "beta"

    def test_unreachable_destination_aborts_cleanly(self, cluster):
        from repro.errors import CoreDownError

        counter = Counter(0, _core=cluster["alpha"])
        cluster.network.set_node_down("beta")
        with pytest.raises(CoreDownError):
            cluster.move(counter, "beta")
        assert cluster.locate(counter) == "alpha"
        assert counter.increment() == 1


class TestMovementAccounting:
    def test_moves_counted(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        sent = cluster["alpha"].movement.moves_sent
        received = cluster["beta"].movement.moves_received
        cluster.move(counter, "beta")
        assert cluster["alpha"].movement.moves_sent == sent + 1
        assert cluster["beta"].movement.moves_received == received + 1

    def test_departure_and_arrival_events(self, cluster):
        seen = []
        cluster["alpha"].events.subscribe("completDeparted", seen.append)
        cluster["beta"].events.subscribe("completArrived", seen.append)
        counter = Counter(0, _core=cluster["alpha"])
        cluster.move(counter, "beta")
        names = [e.name for e in seen]
        assert "completArrived" in names
        assert "completDeparted" in names

    def test_bytes_scale_with_closure(self, cluster):
        small = Counter(0, _core=cluster["alpha"])
        cluster.move(small, "beta")
        small_bytes = cluster.stats.bytes
        big = DataSource(100_000, _core=cluster["alpha"])
        cluster.move(big, "beta")
        assert cluster.stats.bytes - small_bytes > 90_000

    def test_probe_history_travels(self, cluster):
        probe = Probe(_core=cluster["alpha"])
        cluster.move(probe, "beta")
        cluster.move(probe, "alpha")
        history = probe.get_history()
        assert history.count("pre_arrival") == 2
