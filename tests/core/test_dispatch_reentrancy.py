"""Regression tests: mutating subscriber sets from inside a dispatch.

The event bus and the profiler's sample fan-out both iterate a cached
snapshot of their listeners.  A handler that (un)subscribes mid-dispatch
must neither corrupt the iteration nor be delivered to after removal —
the latent bug the snapshot cache fixes re-checks liveness per listener.
"""

from repro.cluster.cluster import Cluster
from repro.core.events import DISPATCH_STATS


class TestEventBusReentrancy:
    def test_handler_unsubscribing_itself_is_safe(self):
        cluster = Cluster(["a"])
        bus = cluster["a"].events
        seen = []

        def once(event):
            seen.append(event.name)
            bus.unsubscribe(sub_id)

        sub_id = bus.subscribe("tick", once)
        bus.publish("tick")
        bus.publish("tick")
        assert seen == ["tick"]

    def test_handler_unsubscribing_a_later_listener_suppresses_it(self):
        cluster = Cluster(["a"])
        bus = cluster["a"].events
        calls = []

        def first(event):
            calls.append("first")
            bus.unsubscribe(second_id)

        def second(event):
            calls.append("second")

        bus.subscribe("tick", first)
        second_id = bus.subscribe("tick", second)
        bus.publish("tick")
        # ``second`` was removed before its turn in the same dispatch: the
        # snapshot still lists it, but the liveness re-check skips it.
        assert calls == ["first"]

    def test_handler_subscribing_during_dispatch_joins_next_publish(self):
        cluster = Cluster(["a"])
        bus = cluster["a"].events
        calls = []

        def late(event):
            calls.append("late")

        def first(event):
            calls.append("first")
            bus.subscribe("tick", late)

        bus.subscribe("tick", first)
        bus.publish("tick")
        assert calls == ["first"]
        bus.publish("tick")
        assert calls == ["first", "first", "late"]

    def test_snapshot_is_reused_while_subscribers_are_stable(self):
        cluster = Cluster(["a"])
        bus = cluster["a"].events
        bus.subscribe("*", lambda event: None)
        bus.subscribe("tick", lambda event: None)
        DISPATCH_STATS.snapshots_built = 0
        for _ in range(10):
            bus.publish("tick")
        assert DISPATCH_STATS.snapshots_built == 1
        # Any subscription change invalidates the snapshot exactly once.
        bus.subscribe("tock", lambda event: None)
        for _ in range(10):
            bus.publish("tick")
        assert DISPATCH_STATS.snapshots_built == 2


class TestProfilerFanoutReentrancy:
    def test_sample_listener_removing_a_later_listener_is_safe(self):
        cluster = Cluster(["a"])
        profiler = cluster["a"].profiler
        profiler.start("cpuLoad", interval=1.0)
        calls = []

        def first(value, average):
            calls.append("first")
            profiler.remove_sample_listener(second_handle)

        def second(value, average):
            calls.append("second")

        profiler.add_sample_listener("cpuLoad", first)
        second_handle = profiler.add_sample_listener("cpuLoad", second)
        cluster.advance(1.5)
        # ``second`` was unhooked inside the very tick that would have
        # reached it; later ticks must not call it either.
        cluster.advance(2.0)
        assert calls and "second" not in calls

    def test_unwatch_from_inside_the_watch_event_handler(self):
        cluster = Cluster(["a"])
        core = cluster["a"]
        fired = []

        watch_id = core.monitor.watch(
            "cpuLoad", ">=", 0.0, interval=1.0, repeat=True, event_name="hot"
        )

        def on_hot(event):
            fired.append(event.data["value"])
            core.monitor.unwatch(watch_id)

        core.events.subscribe("hot", on_hot)
        cluster.advance(5.0)
        assert len(fired) == 1
        assert core.monitor.active_watches() == 0
