"""Tests for the event mechanism: local, remote, complet listeners (§4.2)."""

import pytest

from repro.core.events import Event
from repro.cluster.workload import Counter, Echo
from tests.anchors import Listener


class TestLocalListeners:
    def test_subscribe_and_publish(self, cluster):
        seen = []
        cluster["alpha"].events.subscribe("custom", seen.append)
        cluster["alpha"].events.publish("custom", detail=7)
        assert len(seen) == 1
        assert seen[0].name == "custom"
        assert seen[0].data == {"detail": 7}
        assert seen[0].origin == "alpha"

    def test_wildcard_subscription(self, cluster):
        seen = []
        cluster["alpha"].events.subscribe("*", seen.append)
        cluster["alpha"].events.publish("one")
        cluster["alpha"].events.publish("two")
        assert [e.name for e in seen] == ["one", "two"]

    def test_name_filter(self, cluster):
        seen = []
        cluster["alpha"].events.subscribe("wanted", seen.append)
        cluster["alpha"].events.publish("unwanted")
        assert seen == []

    def test_unsubscribe(self, cluster):
        seen = []
        sub = cluster["alpha"].events.subscribe("x", seen.append)
        cluster["alpha"].events.unsubscribe(sub)
        cluster["alpha"].events.publish("x")
        assert seen == []

    def test_listener_failure_isolated(self, cluster):
        seen = []

        def bad(event):
            raise RuntimeError("listener bug")

        cluster["alpha"].events.subscribe("x", bad)
        cluster["alpha"].events.subscribe("x", seen.append)
        cluster["alpha"].events.publish("x")
        assert len(seen) == 1

    def test_event_carries_virtual_time(self, cluster):
        seen = []
        cluster["alpha"].events.subscribe("x", seen.append)
        cluster.advance(5.0)
        cluster["alpha"].events.publish("x")
        assert seen[0].time == pytest.approx(5.0)


class TestRemoteListeners:
    def test_cross_core_subscription(self, cluster):
        seen = []
        cluster["alpha"].events.subscribe_remote("beta", "remote-evt", seen.append)
        cluster["beta"].events.publish("remote-evt", who="beta")
        assert len(seen) == 1
        assert seen[0].origin == "beta"

    def test_remote_unsubscribe(self, cluster):
        seen = []
        handle = cluster["alpha"].events.subscribe_remote("beta", "e", seen.append)
        cluster["alpha"].events.unsubscribe_remote(handle)
        cluster["beta"].events.publish("e")
        assert seen == []

    def test_subscription_to_self_is_local(self, cluster):
        seen = []
        cluster["alpha"].events.subscribe_remote("alpha", "e", seen.append)
        messages = cluster.stats.messages
        cluster["alpha"].events.publish("e")
        assert len(seen) == 1
        assert cluster.stats.messages == messages  # no network involved

    def test_dead_subscriber_dropped(self, cluster3):
        seen = []
        cluster3["gamma"].events.subscribe_remote("alpha", "e", seen.append)
        cluster3.network.set_node_down("gamma")
        cluster3["alpha"].events.publish("e")  # must not raise
        cluster3.network.set_node_down("gamma", down=False)
        cluster3["alpha"].events.publish("e")
        assert seen == []  # subscription was dropped on first failure


class TestCompletListeners:
    def test_delivery_through_reference(self, cluster):
        listener = Listener(_core=cluster["alpha"])
        cluster["alpha"].events.subscribe_complet("app-event", listener)
        cluster["alpha"].events.publish("app-event")
        assert listener.events_seen() == ["app-event"]

    def test_survives_migration(self, cluster):
        """§4.2: complets keep catching their events after they migrate."""
        listener = Listener(_core=cluster["alpha"])
        cluster["alpha"].events.subscribe_complet("app-event", listener)
        cluster.move(listener, "beta")
        cluster["alpha"].events.publish("app-event")
        assert listener.events_seen() == ["app-event"]

    def test_custom_method_name(self, cluster):
        listener = Listener(_core=cluster["alpha"])
        cluster["alpha"].events.subscribe_complet("e", listener, method="on_event")
        cluster["alpha"].events.publish("e")
        assert listener.events_seen() == ["e"]


class TestBuiltinEvents:
    def test_shutdown_event(self, cluster):
        seen = []
        cluster["alpha"].events.subscribe("coreShutdown", seen.append)
        cluster["alpha"].shutdown()
        assert [e.name for e in seen] == ["coreShutdown"]
        assert seen[0].data["core"] == "alpha"

    def test_shutdown_event_reaches_remote_listener(self, cluster):
        seen = []
        cluster["beta"].events.subscribe_remote("alpha", "coreShutdown", seen.append)
        cluster["alpha"].shutdown()
        assert len(seen) == 1

    def test_shutdown_idempotent(self, cluster):
        seen = []
        cluster["alpha"].events.subscribe("coreShutdown", seen.append)
        cluster["alpha"].shutdown()
        cluster["alpha"].shutdown()
        assert len(seen) == 1

    def test_movement_events_data(self, cluster):
        arrived = []
        departed = []
        cluster["beta"].events.subscribe("completArrived", arrived.append)
        cluster["alpha"].events.subscribe("completDeparted", departed.append)
        counter = Counter(0, _core=cluster["alpha"])
        cluster.move(counter, "beta")
        assert arrived[0].data["source"] == "alpha"
        assert departed[0].data["destination"] == "beta"
        assert arrived[0].data["complet"] == str(counter._fargo_target_id)

    def test_published_count(self, cluster):
        before = cluster["alpha"].events.published_count
        cluster["alpha"].events.publish("a")
        cluster["alpha"].events.publish("b")
        assert cluster["alpha"].events.published_count == before + 2


class TestEventObject:
    def test_str_rendering(self):
        event = Event("evt", "core1", 1.5, {"x": 1})
        rendered = str(event)
        assert "evt@core1" in rendered
        assert "x=1" in rendered


class TestRemoteCompletSubscription:
    def test_complet_subscribes_to_remote_core(self, cluster3):
        """§4.2 end to end: a complet at gamma listens to events at alpha,
        registered from gamma's side, surviving its own migration."""
        listener = Listener(_core=cluster3["gamma"], _at="gamma")
        cluster3["gamma"].events.subscribe_complet_at(
            "alpha", "app-event", listener
        )
        cluster3["alpha"].events.publish("app-event")
        assert listener.events_seen() == ["app-event"]
        cluster3.move(listener, "beta")
        cluster3["alpha"].events.publish("app-event")
        assert listener.events_seen() == ["app-event", "app-event"]

    def test_local_fast_path(self, cluster):
        listener = Listener(_core=cluster["alpha"])
        messages = cluster.stats.messages
        cluster["alpha"].events.subscribe_complet_at("alpha", "e", listener)
        assert cluster.stats.messages == messages  # no network involved
        cluster["alpha"].events.publish("e")
        assert listener.events_seen() == ["e"]

    def test_remote_unsubscribe_by_id(self, cluster):
        listener = Listener(_core=cluster["beta"], _at="beta")
        subscription = cluster["beta"].events.subscribe_complet_at(
            "alpha", "e", listener
        )
        cluster["alpha"].events.unsubscribe(subscription)
        cluster["alpha"].events.publish("e")
        assert listener.events_seen() == []
