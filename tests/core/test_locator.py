"""Tests for the location registry (the paper's future-work naming scheme)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter
from repro.errors import CoreDownError
from repro.net.messages import MessageKind


@pytest.fixture
def registry_cluster():
    return Cluster(["a", "b", "c", "d"], use_location_registry=True)


class TestRegistryMaintenance:
    def test_home_learns_every_move(self, registry_cluster):
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        cluster.move_via_host(counter, "b")
        cluster.move_via_host(counter, "c")
        location = cluster["a"].locator.resolve(counter._fargo_target_id)
        assert location is not None
        assert location.core == "c"

    def test_local_birth_core_records_directly(self, registry_cluster):
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        cluster.move(counter, "b")
        cluster["b"].move(counter._fargo_target_id, "a")  # back home
        location = cluster["a"].locator.resolve(counter._fargo_target_id)
        assert location.core == "a"

    def test_no_record_before_first_move(self, registry_cluster):
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        assert cluster["a"].locator.resolve(counter._fargo_target_id) is None

    def test_query_from_third_core(self, registry_cluster):
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        cluster.move(counter, "c")
        location = cluster["d"].locator.resolve(counter._fargo_target_id)
        assert location.core == "c"

    def test_update_is_one_message_per_move(self, registry_cluster):
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        cluster.move(counter, "b")
        before = cluster.stats.by_kind[MessageKind.LOCATION_UPDATE]
        cluster.move_via_host(counter, "c")
        assert cluster.stats.by_kind[MessageKind.LOCATION_UPDATE] - before == 1

    def test_disabled_by_default(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        cluster.move(counter, "beta")
        assert cluster["alpha"].locator.resolve(counter._fargo_target_id) is None

    def test_update_survives_home_outage(self, registry_cluster):
        """A missed update degrades to chain walking, never to an error."""
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        cluster.move(counter, "b")
        cluster.network.set_node_down("a")  # home offline
        cluster["b"].move(counter._fargo_target_id, "c")  # update dropped
        cluster.network.set_node_down("a", down=False)
        assert counter.increment() == 1  # chain still resolves


class TestRegistryResolution:
    def test_locate_is_single_query_after_many_hops(self, registry_cluster):
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        for destination in ("b", "c", "d", "b", "c"):
            cluster.move_via_host(counter, destination)
        cluster.reset_stats()
        # The stub lives at the complet's home Core: resolution needs no
        # query or chain walk (only shorten bookkeeping posts).
        assert cluster.locate(counter) == "c"
        assert cluster.stats.by_kind[MessageKind.LOCATION_QUERY] == 0
        assert cluster.stats.by_kind[MessageKind.TRACKER_LOOKUP] == 0
        # From any other Core: one LOCATION_QUERY round trip, no chain walk.
        foreign = cluster.stub_at("d", counter)
        cluster.reset_stats()
        assert cluster["d"].references.locate(foreign._fargo_tracker) == "c"
        assert cluster.stats.by_kind[MessageKind.LOCATION_QUERY] == 2
        assert cluster.stats.by_kind[MessageKind.TRACKER_LOOKUP] == 0

    def test_invocation_survives_dead_intermediate_core(self, registry_cluster):
        """The headline benefit over chains: a dead Core on the migration
        path no longer breaks the reference."""
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        cluster.move_via_host(counter, "b")
        cluster.move_via_host(counter, "c")
        cluster.network.set_node_down("b")  # the chain a->b->c is cut
        assert counter.increment() == 1  # recovered via the registry

    def test_chain_mode_fails_same_scenario(self):
        chain_cluster = Cluster(["a", "b", "c"])  # registry disabled
        counter = Counter(0, _core=chain_cluster["a"])
        chain_cluster.move_via_host(counter, "b")
        chain_cluster.move_via_host(counter, "c")
        chain_cluster.network.set_node_down("b")
        with pytest.raises(CoreDownError):
            counter.increment()

    def test_no_recovery_when_home_also_dead(self, registry_cluster):
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        cluster.move_via_host(counter, "b")
        cluster.move_via_host(counter, "c")
        cluster.network.set_node_down("b")
        cluster.network.set_node_down("a")  # home gone too
        with pytest.raises(CoreDownError):
            counter.increment()

    def test_registry_shortens_tracker(self, registry_cluster):
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        cluster.move_via_host(counter, "b")
        cluster.move_via_host(counter, "c")
        assert cluster.locate(counter) == "c"
        assert counter._fargo_tracker.next_hop.core == "c"

    def test_stats_counters(self, registry_cluster):
        cluster = registry_cluster
        counter = Counter(0, _core=cluster["a"])
        cluster.move(counter, "b")
        assert cluster["a"].locator.updates_received == 1
        assert cluster["a"].locator.known_count() == 1
        cluster["d"].locator.resolve(counter._fargo_target_id)
        assert cluster["a"].locator.queries_served == 1


class TestRegistryWithGroups:
    def test_whole_group_registered(self, registry_cluster):
        from repro.complet.relocators import Pull
        from repro.core.core import Core
        from repro.cluster.workload import DataSource, Worker

        cluster = registry_cluster
        source = DataSource(100, _core=cluster["a"])
        worker = Worker(source, _core=cluster["a"])
        anchor = cluster["a"].repository.get(worker._fargo_target_id)
        Core.get_meta_ref(anchor.source).set_relocator(Pull())
        cluster.move(worker, "c")
        for stub in (worker, source):
            location = cluster["a"].locator.resolve(stub._fargo_target_id)
            assert location.core == "c"
