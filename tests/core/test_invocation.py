"""Tests for the invocation unit: parameter passing semantics (§3.1)."""

import pytest

from repro.errors import NoSuchMethodError
from repro.cluster.workload import Counter, Echo
from tests.anchors import Failing, Holder, SelfRef, Spawner


class TestByValuePassing:
    def test_arguments_copied_even_when_colocated(self, cluster):
        """Complets are always mutually remote w.r.t. parameter passing."""
        echo = Echo("e", _core=cluster["alpha"])
        payload = {"list": [1, 2]}
        returned = echo.echo(payload)
        assert returned == payload
        assert returned is not payload
        # Mutating the original after the call cannot affect the complet.
        payload["list"].append(3)
        assert echo.echo({"probe": 1}) == {"probe": 1}

    def test_results_copied(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        a = echo.echo({"k": [1]})
        b = echo.echo({"k": [1]})
        assert a == b
        assert a is not b

    def test_remote_arguments_copied(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        data = {"nested": {"deep": [1, 2, 3]}}
        assert echo.echo(data) == data

    def test_kwargs_supported(self, cluster):
        source = Counter(0, _core=cluster["alpha"])
        assert source.increment(by=10) == 10

    def test_large_payload_roundtrip(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        blob = bytes(range(256)) * 1000
        assert echo.echo(blob) == blob


class TestByReferencePassing:
    def test_stub_argument_passes_by_reference(self, cluster):
        """An anchor parameter arrives as a reference to the SAME complet."""
        counter = Counter(0, _core=cluster["alpha"])
        holder = Holder(_core=cluster["beta"], _at="beta")
        holder.set_ref(counter)
        # The holder's reference manipulates the original complet:
        cluster["beta"].repository.get(holder._fargo_target_id).ref.increment()
        assert counter.read() == 1

    def test_reference_degraded_to_link(self, cluster):
        """§3.1: a passed reference arrives with the default link type."""
        from repro.complet.relocators import Pull
        from repro.core.core import Core

        counter = Counter(0, _core=cluster["alpha"])
        Core.get_meta_ref(counter).set_relocator(Pull())
        holder = Holder(_core=cluster["beta"], _at="beta")
        holder.set_ref(counter)
        received = cluster["beta"].repository.get(holder._fargo_target_id).ref
        assert Core.get_meta_ref(received).type_name == "link"

    def test_result_reference_by_reference(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        holder = Holder(counter, _core=cluster["alpha"])
        returned = holder.get_ref()
        returned.increment()
        assert counter.read() == 1

    def test_anchor_self_passing(self, cluster):
        """A complet passing its own anchor sends a reference to itself."""
        selfref = SelfRef(_core=cluster["alpha"])
        selfref.adopt_self(selfref)
        assert selfref.through_self("ping") == "ping"

    def test_object_graph_copied_without_complets(self, cluster):
        """§3.1: a graph containing references is copied, the complets are not."""
        counter = Counter(0, _core=cluster["alpha"])
        echo = Echo("e", _core=cluster["beta"], _at="beta")
        graph = {"notes": [1, 2], "ref": counter}
        returned = echo.echo(graph)
        assert returned["notes"] == [1, 2]
        returned["ref"].increment()
        assert counter.read() == 1  # same complet behind the copied graph

    def test_shared_stub_stays_shared(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        echo = Echo("e", _core=cluster["beta"], _at="beta")
        returned = echo.echo({"a": counter, "b": counter})
        assert returned["a"] is returned["b"]


class TestExceptions:
    def test_exception_propagates_locally(self, cluster):
        failing = Failing(_core=cluster["alpha"])
        with pytest.raises(ValueError, match="boom from complet"):
            failing.boom()

    def test_exception_propagates_remotely(self, cluster):
        failing = Failing(_core=cluster["alpha"])
        cluster.move(failing, "beta")
        with pytest.raises(ValueError, match="boom from complet"):
            failing.boom()

    def test_exception_type_preserved(self, cluster):
        failing = Failing(_core=cluster["alpha"])
        cluster.move(failing, "beta")
        with pytest.raises(KeyError):
            failing.custom()

    def test_unknown_method_rejected(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        with pytest.raises(NoSuchMethodError):
            echo._fargo_invoke("not_a_method", (), {})

    def test_private_method_rejected(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        with pytest.raises(NoSuchMethodError):
            echo._fargo_invoke("_complet_id", (), {})


class TestNestedInvocation:
    def test_complet_calls_complet(self, cluster):
        echo = Echo("deep", _core=cluster["beta"], _at="beta")
        holder = Holder(echo, _core=cluster["alpha"])
        assert holder.call_ref() == "deep"

    def test_complet_instantiates_complet(self, cluster):
        spawner = Spawner(_core=cluster["alpha"])
        new_echo = spawner.spawn_echo("child")
        assert new_echo.ping() == "child"
        assert cluster.locate(new_echo) == "alpha"

    def test_complet_instantiates_remotely(self, cluster):
        spawner = Spawner(_core=cluster["alpha"])
        new_echo = spawner.spawn_remote_echo("far-child", "beta")
        assert new_echo.ping() == "far-child"
        assert cluster.locate(new_echo) == "beta"


class TestAccounting:
    def test_executed_counter(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        before = cluster["alpha"].invocation.executed
        echo.ping()
        echo.ping()
        assert cluster["alpha"].invocation.executed == before + 2

    def test_invocation_charges_virtual_time_remote(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        t0 = cluster.now
        echo.ping()
        assert cluster.now > t0

    def test_local_invocation_is_free_of_network(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        messages_before = cluster.stats.messages
        echo.ping()
        assert cluster.stats.messages == messages_before
