"""The abortable move protocol, hop-bounded forwarding, and re-location."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.workload import Counter, Echo
from repro.core.core import Core
from repro.core.events import CALL_RETRIED, MOVE_FAILED
from repro.core.movement import MAX_FORWARD_HOPS
from repro.errors import (
    CompletError,
    CoreDownError,
    CoreUnreachableError,
    DeadlineExceededError,
)
from repro.net.retry import RetryPolicy

from tests.anchors import Holder, Probe


class TestAbortableMoves:
    def test_abort_runs_the_abort_departure_hook(self):
        cluster = Cluster(["a", "b"])
        probe = Probe(_core=cluster["a"])
        cluster.partition({"a"}, {"b"})
        with pytest.raises(CoreUnreachableError):
            cluster.move(probe, "b")
        history = probe.get_history()
        assert "pre_departure:b" in history
        assert "abort_departure:b" in history
        assert "post_departure" not in history

    def test_aborted_complet_stays_hosted_and_invocable(self):
        cluster = Cluster(["a", "b"])
        probe = Probe(_core=cluster["a"])
        cluster.partition({"a"}, {"b"})
        with pytest.raises(CoreUnreachableError):
            cluster.move(probe, "b")
        assert cluster.locate(probe) == "a"
        probe.note("after-abort")
        assert "after-abort" in probe.get_history()
        assert cluster["a"].movement.moves_aborted == 1
        assert cluster["a"].movement.moves_sent == 0

    def test_abort_publishes_move_failed(self):
        cluster = Cluster(["a", "b"])
        probe = Probe(_core=cluster["a"])
        seen = []
        cluster["a"].events.subscribe(MOVE_FAILED, seen.append)
        cluster.partition({"a"}, {"b"})
        with pytest.raises(CoreUnreachableError):
            cluster.move(probe, "b")
        assert len(seen) == 1
        event = seen[0]
        assert event.data["complet"] == str(probe._fargo_target_id)
        assert event.data["destination"] == "b"
        assert event.data["reason"] == "CoreUnreachableError"

    def test_whole_group_aborts_together(self):
        """A pulled group member gets the same abort treatment as the root."""
        cluster = Cluster(["a", "b"])
        probe = Probe(_core=cluster["a"])
        holder = Holder(probe, _core=cluster["a"])
        cluster["a"].admin(
            "a",
            "retype",
            complet=str(holder._fargo_target_id),
            target=str(probe._fargo_target_id),
            type="pull",
        )
        seen = []
        cluster["a"].events.subscribe(MOVE_FAILED, seen.append)
        cluster.partition({"a"}, {"b"})
        with pytest.raises(CoreUnreachableError):
            cluster.move(holder, "b")
        assert set(seen[0].data["group"]) == {
            str(holder._fargo_target_id),
            str(probe._fargo_target_id),
        }
        assert "abort_departure:b" in probe.get_history()
        assert cluster.locate(holder) == "a"
        assert cluster.locate(probe) == "a"

    def test_retry_after_heal_succeeds(self):
        cluster = Cluster(["a", "b"])
        probe = Probe(_core=cluster["a"])
        cluster.partition({"a"}, {"b"})
        with pytest.raises(CoreUnreachableError):
            cluster.move(probe, "b")
        cluster.heal_partition()
        cluster.move(probe, "b")
        assert cluster.locate(probe) == "b"
        history = probe.get_history()
        assert history.index("abort_departure:b") < history.index("post_arrival:b")


class TestMovesUnderRetryPolicy:
    def test_move_rides_through_a_transient_outage(self):
        cluster = Cluster(
            ["a", "b"], retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5)
        )
        inject = FailureInjector(cluster)
        counter = Counter(41, _core=cluster["a"])
        counter.increment()
        cluster.set_link("a", "b", up=False)
        inject.restore_link_at(0.4, "a", "b")
        cluster.move(counter, "b")  # first try fails, the 0.5s retry lands
        assert cluster.locate(counter) == "b"
        assert counter.read() == 42  # state travelled exactly once
        assert cluster["a"].movement.moves_aborted == 0

    def test_retries_are_observable_as_events(self):
        cluster = Cluster(
            ["a", "b"], retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5)
        )
        inject = FailureInjector(cluster)
        counter = Counter(0, _core=cluster["a"])
        seen = []
        cluster["a"].events.subscribe(CALL_RETRIED, seen.append)
        cluster.set_link("a", "b", up=False)
        inject.restore_link_at(0.4, "a", "b")
        cluster.move(counter, "b")
        assert seen, "the retry should have published a callRetried event"
        assert seen[0].data["destination"] == "b"
        assert seen[0].data["attempt"] == 1

    def test_exhausted_retries_still_abort_cleanly(self):
        cluster = Cluster(
            ["a", "b"], retry_policy=RetryPolicy(max_attempts=2, base_delay=0.25)
        )
        counter = Counter(7, _core=cluster["a"])
        cluster.set_link("a", "b", up=False)  # and it stays down
        with pytest.raises(CoreUnreachableError):
            cluster.move(counter, "b")
        assert cluster.locate(counter) == "a"
        assert counter.read() == 7
        assert cluster["a"].movement.moves_aborted == 1


class TestMoveDeadlineExemption:
    def test_slow_move_commits_instead_of_split_brain(self):
        """A cluster-wide rpc timeout must never abort a committed move.

        The MOVE_COMPLET round trip blows the deadline, but by the time
        the reply is back the destination has installed the group — so
        the sender must commit too, not abort into a state where the
        same complet is live on both Cores.
        """
        cluster = Cluster(["a", "b"], rpc_timeout=1.0)
        echo = Echo("x", _core=cluster["a"])
        cluster.set_link("a", "b", latency=2.0)
        cluster.move(echo, "b")  # slower than the deadline, still commits
        cluster.set_link("a", "b", latency=0.01)  # fast again for the probes
        assert cluster.locate(echo) == "b"
        assert not cluster["a"].repository.hosts(echo._fargo_target_id)
        assert cluster["b"].repository.hosts(echo._fargo_target_id)
        assert cluster["a"].movement.moves_aborted == 0
        assert cluster["a"].movement.moves_sent == 1
        assert cluster["b"].movement.moves_received == 1

    def test_other_traffic_still_honours_the_deadline(self):
        cluster = Cluster(["a", "b"], rpc_timeout=1.0)
        echo = Echo("x", _core=cluster["a"])
        cluster.move(echo, "b")
        cluster.set_link("a", "b", latency=2.0)
        with pytest.raises(DeadlineExceededError):
            echo.ping()


class TestForwardHopBound:
    def test_stale_tracker_cycle_is_detected(self):
        """A stale local tracker would bounce MOVE_REQUESTs forever."""
        cluster = Cluster(["a", "b", "c"])
        echo = Echo("x", _core=cluster["a"])
        cluster.move(echo, "b")
        # Corrupt Core b: drop the complet but leave its tracker claiming
        # the complet is local.  Requests routed there now chase a ghost.
        cluster["b"].repository.release(echo._fargo_target_id)
        with pytest.raises(CompletError, match="stale-tracker cycle"):
            cluster["a"].move(echo, "c")

    def test_bound_is_inclusive(self):
        """A request that already took MAX_FORWARD_HOPS forwards is rejected."""
        cluster = Cluster(["a", "b"])
        echo = Echo("x", _core=cluster["a"])
        body = (echo._fargo_target_id, "b", None, None, MAX_FORWARD_HOPS)
        with pytest.raises(CompletError, match="stale-tracker cycle"):
            cluster["a"].movement._handle_move_request("b", body)

    def test_last_permitted_hop_still_moves(self):
        cluster = Cluster(["a", "b"])
        echo = Echo("x", _core=cluster["a"])
        body = (echo._fargo_target_id, "b", None, None, MAX_FORWARD_HOPS - 1)
        cluster["a"].movement._handle_move_request("b", body)
        assert cluster.locate(echo) == "b"


class TestInvocationRelocation:
    def _scattered_cluster(self, **kwargs):
        """Echo born at a, moved a->b->c; a's tracker still points at b."""
        cluster = Cluster(["a", "b", "c"], **kwargs)
        echo = Echo("x", _core=cluster["a"])
        cluster.move(echo, "b")
        cluster.move_via_host(echo, "c")  # leaves a's tracker on the b hop
        return cluster, echo

    def test_registry_recovers_a_route_through_a_dead_hop(self):
        cluster, echo = self._scattered_cluster(use_location_registry=True)
        cluster.network.set_node_down("b")
        assert echo.ping() == "x"  # re-located via the home registry
        # The tracker was shortened to c; the dead hop is out of the path.
        assert cluster["a"].repository.existing_tracker(
            echo._fargo_target_id
        ).next_hop.core == "c"

    def test_without_registry_a_dead_hop_still_fails(self):
        """Chain walking cannot skip a dead intermediate Core (§7)."""
        cluster, echo = self._scattered_cluster()
        cluster.network.set_node_down("b")
        with pytest.raises(CoreDownError):
            echo.ping()

    def test_timed_out_invocation_is_not_transparently_retried(self):
        """A timeout is indeterminate: the handler may have executed, so
        re-locating and retrying would silently duplicate the call."""
        cluster, echo = self._scattered_cluster(
            rpc_timeout=1.0, use_location_registry=True
        )
        cluster.set_link("a", "b", latency=2.0)  # the forward hop is now slow
        with pytest.raises(DeadlineExceededError):
            echo.ping()
        # The call did reach c exactly once; a transparent registry-based
        # retry would have executed it a second time and hidden the error.
        assert cluster["c"].repository.get(echo._fargo_target_id).calls == 1

    def test_rpc_retries_carry_an_invocation_across_an_outage(self):
        cluster = Cluster(
            ["a", "b"], retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5)
        )
        inject = FailureInjector(cluster)
        echo = Echo("x", _core=cluster["a"])
        cluster.move(echo, "b")
        cluster.set_link("a", "b", up=False)
        inject.restore_link_at(0.4, "a", "b")
        assert echo.ping() == "x"
        assert cluster["b"].repository.get(echo._fargo_target_id).calls == 1


class TestOnewayFailedEvent:
    def test_core_publishes_oneway_failed(self):
        from repro.core.events import ONEWAY_FAILED
        from repro.net.messages import MessageKind

        cluster = Cluster(["a", "b"])
        seen = []
        cluster["b"].events.subscribe(ONEWAY_FAILED, seen.append)

        def broken(src, body):
            raise RuntimeError("update handler broke")

        # LOCATION_UPDATE is one-way traffic; replace b's handler.
        cluster["b"].peer.endpoint._handlers[MessageKind.LOCATION_UPDATE] = broken
        cluster["a"].peer.notify(
            "b", MessageKind.LOCATION_UPDATE, ("bogus", "payload")
        )
        assert len(seen) == 1
        assert seen[0].data["kind"] == MessageKind.LOCATION_UPDATE.value
        assert seen[0].data["source"] == "a"
