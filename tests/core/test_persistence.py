"""Tests for complet persistence (the §7 future-work extension)."""

import pytest

from repro.core.persistence import SNAPSHOT_VERSION, Snapshot, restore, snapshot
from repro.errors import CompletError
from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter, DataSource, Desktop, Printer, Worker


class TestSnapshot:
    def test_snapshot_captures_state(self, cluster):
        counter = Counter(40, _core=cluster["alpha"])
        counter.increment(2)
        snap = snapshot(cluster["alpha"], counter)
        assert snap.original_id == counter._fargo_target_id
        assert snap.taken_at == cluster.now

    def test_snapshot_requires_hosting_core(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        cluster.move(counter, "beta")
        with pytest.raises(CompletError):
            snapshot(cluster["alpha"], counter)

    def test_snapshot_bytes_roundtrip(self, cluster):
        counter = Counter(7, _core=cluster["alpha"])
        snap = snapshot(cluster["alpha"], counter)
        again = Snapshot.from_bytes(snap.to_bytes())
        assert again == snap

    def test_from_bytes_rejects_garbage(self):
        import pickle

        with pytest.raises(CompletError):
            Snapshot.from_bytes(pickle.dumps({"not": "a snapshot"}))

    def test_snapshot_carries_current_version(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        snap = snapshot(cluster["alpha"], counter)
        assert snap.version == SNAPSHOT_VERSION
        assert Snapshot.from_bytes(snap.to_bytes()).version == SNAPSHOT_VERSION

    def test_version_mismatch_rejected(self, cluster):
        """A snapshot from another wire-format era fails typed, not weird."""
        import dataclasses

        counter = Counter(0, _core=cluster["alpha"])
        snap = snapshot(cluster["alpha"], counter)
        relic = dataclasses.replace(snap, version=SNAPSHOT_VERSION + 1)
        with pytest.raises(CompletError, match="version"):
            Snapshot.from_bytes(relic.to_bytes())

    def test_stamp_reference_survives_snapshot(self, cluster):
        """``stamp`` keeps its by-type semantics through persist/restore."""
        from repro.complet.relocators import Stamp
        from repro.core.core import Core

        printer_a = Printer("site-a", _core=cluster["alpha"])
        Printer("site-b", _core=cluster["beta"])
        desk = Desktop(printer_a, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(desk._fargo_target_id)
        Core.get_meta_ref(anchor.printer).set_relocator(Stamp())
        snap = snapshot(cluster["alpha"], desk)
        restored = restore(cluster["beta"], snap)
        # Restored at beta, the stamped reference re-resolved by type.
        assert restored.print_report("r") == "printed at site-b: r"


class TestRestore:
    def test_restore_is_independent_copy(self, cluster):
        counter = Counter(10, _core=cluster["alpha"])
        snap = snapshot(cluster["alpha"], counter)
        counter.increment(90)  # original diverges after the checkpoint
        restored = restore(cluster["beta"], snap)
        assert restored.read() == 10
        assert counter.read() == 100
        assert restored._fargo_target_id != counter._fargo_target_id

    def test_restore_fires_event(self, cluster):
        seen = []
        cluster["beta"].events.subscribe("completRestored", seen.append)
        counter = Counter(0, _core=cluster["alpha"])
        snap = snapshot(cluster["alpha"], counter)
        restore(cluster["beta"], snap)
        assert len(seen) == 1
        assert seen[0].data["original"] == str(counter._fargo_target_id)

    def test_restored_references_reconnect(self, cluster):
        """Outgoing references in the snapshot resolve to live targets."""
        source = DataSource(100, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        snap = snapshot(cluster["alpha"], worker)
        cluster.move(source, "beta")  # collaborator moves meanwhile
        restored = restore(cluster["beta"], snap)
        assert restored.work(1) == 100  # reconnected through the reference

    def test_keep_identity_after_destruction(self, cluster):
        counter = Counter(5, _core=cluster["alpha"])
        original_id = counter._fargo_target_id
        snap = snapshot(cluster["alpha"], counter)
        cluster["alpha"].repository.destroy(original_id)
        revenant = restore(cluster["alpha"], snap, keep_identity=True)
        assert revenant._fargo_target_id == original_id
        assert revenant.read() == 5
        # Old references to the identity work again:
        assert counter.increment() == 6

    def test_keep_identity_refused_while_alive_locally(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        snap = snapshot(cluster["alpha"], counter)
        with pytest.raises(CompletError, match="still hosted"):
            restore(cluster["alpha"], snap, keep_identity=True)

    def test_keep_identity_refused_while_registry_knows(self):
        cluster = Cluster(["a", "b"], use_location_registry=True)
        counter = Counter(0, _core=cluster["a"])
        snap = snapshot(cluster["a"], counter)
        cluster.move(counter, "b")  # registry records the move
        with pytest.raises(CompletError, match="registry"):
            restore(cluster["a"], snap, keep_identity=True)

    def test_keep_identity_allowed_when_home_crashed(self):
        """The identity check cannot consult a dead home: with no local
        copy and no registry answer, reclaiming the identity is legal —
        the fail-stop assumption says the original cannot answer."""
        cluster = Cluster(["a", "b", "c"], use_location_registry=True)
        counter = Counter(5, _core=cluster["a"])
        original_id = counter._fargo_target_id
        snap = snapshot(cluster["a"], counter)
        cluster.network.set_node_down("a")  # home (and host) crashes
        revenant = restore(cluster["b"], snap, keep_identity=True)
        assert revenant._fargo_target_id == original_id
        assert revenant.read() == 5
        # (Fresh stubs minted elsewhere still route via the dead home and
        # fail typed — RecoveryManager, not raw restore, repairs those.)

    def test_keep_identity_allowed_when_home_partitioned(self):
        cluster = Cluster(["a", "b"], use_location_registry=True)
        counter = Counter(9, _core=cluster["a"])
        snap = snapshot(cluster["a"], counter)
        cluster.partition({"a"}, {"b"})
        revenant = restore(cluster["b"], snap, keep_identity=True)
        assert revenant._fargo_target_id == counter._fargo_target_id
        assert revenant.read() == 9


class TestCrashRecoveryScenario:
    def test_checkpoint_crash_restore(self, cluster3):
        """The classic persistence story: periodic checkpoints survive a
        hard crash; the complet resumes from the last one elsewhere."""
        counter = Counter(0, _core=cluster3["alpha"])
        checkpoints: list[bytes] = []
        for round_number in range(3):
            counter.increment(10)
            checkpoints.append(snapshot(cluster3["alpha"], counter).to_bytes())
        cluster3.network.set_node_down("alpha")  # crash: no shutdown event
        snap = Snapshot.from_bytes(checkpoints[-1])
        recovered = restore(cluster3["beta"], snap)
        assert recovered.read() == 30
        assert recovered.increment() == 31
