"""Edge cases of the event and profiling configuration surface."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter, Echo


class TestWildcardRemote:
    def test_remote_wildcard_subscription(self, cluster):
        """A remote subscription with '*' receives every event kind."""
        seen = []
        cluster["alpha"].events.subscribe_remote("beta", "*", seen.append)
        counter = Counter(0, _core=cluster["alpha"])
        cluster.move(counter, "beta")  # fires completArrived at beta
        cluster["beta"].events.publish("custom-event")
        names = [e.name for e in seen]
        assert "completArrived" in names
        assert "custom-event" in names

    def test_wildcard_complet_listener(self, cluster):
        from tests.anchors import Listener

        listener = Listener(_core=cluster["beta"], _at="beta")
        cluster["alpha"].events.subscribe_complet("*", listener)
        cluster["alpha"].events.publish("one")
        cluster["alpha"].events.publish("two")
        assert listener.events_seen() == ["one", "two"]


class TestProfileCacheTtl:
    def test_custom_ttl_per_core(self):
        cluster = Cluster(["a", "b"], profile_cache_ttl=5.0)
        core = cluster["a"]
        core.profile_instant("completLoad")
        evaluations = core.profiler.evaluations["completLoad"]
        cluster.advance(3.0)  # within the 5 s TTL
        core.profile_instant("completLoad")
        assert core.profiler.evaluations["completLoad"] == evaluations
        cluster.advance(3.0)  # past it
        core.profile_instant("completLoad")
        assert core.profiler.evaluations["completLoad"] == evaluations + 1

    def test_zero_ttl_disables_caching(self):
        cluster = Cluster(["a"], profile_cache_ttl=0.0)
        core = cluster["a"]
        core.profile_instant("completLoad")
        first = core.profiler.evaluations["completLoad"]
        cluster.advance(0.001)
        core.profile_instant("completLoad")
        assert core.profiler.evaluations["completLoad"] == first + 1


class TestEventDataIntegrity:
    def test_remote_event_is_a_copy(self, cluster):
        """Events cross the wire by value like everything else."""
        received = []
        cluster["alpha"].events.subscribe_remote("beta", "e", received.append)
        local = []
        cluster["beta"].events.subscribe("e", local.append)
        cluster["beta"].events.publish("e", payload={"k": [1]})
        assert received[0].data == local[0].data
        assert received[0].data is not local[0].data

    def test_event_ordering_preserved(self, cluster):
        seen = []
        cluster["alpha"].events.subscribe("*", seen.append)
        for index in range(10):
            cluster["alpha"].events.publish(f"evt{index}")
        assert [e.name for e in seen] == [f"evt{i}" for i in range(10)]

    def test_subscribe_during_dispatch_is_safe(self, cluster):
        """A listener adding listeners must not break the current dispatch."""
        core = cluster["alpha"]
        late = []

        def recursive(event):
            core.events.subscribe("later", late.append)

        core.events.subscribe("first", recursive)
        core.events.publish("first")
        core.events.publish("later")
        assert len(late) == 1

    def test_unsubscribe_during_dispatch_is_safe(self, cluster):
        core = cluster["alpha"]
        seen = []
        handles = {}

        def self_removing(event):
            seen.append(event)
            core.events.unsubscribe(handles["me"])

        handles["me"] = core.events.subscribe("e", self_removing)
        core.events.publish("e")
        core.events.publish("e")
        assert len(seen) == 1
