"""Tests: relocators (built-in and user-defined) travel on the wire intact."""

from repro.complet.relocators import Duplicate, Pull, Stamp
from repro.core.core import Core
from repro.cluster.workload import Counter, DataSource, Worker
from tests.anchors import Holder, SizeBound_


def _held_ref(cluster, holder):
    host = cluster.core(cluster.locate(holder))
    return host.repository.get(holder._fargo_target_id).ref


class TestRelocatorsTravel:
    def test_pull_semantics_survive_holder_moves(self, cluster3):
        """A pull ref keeps pulling after its holder migrated twice."""
        target = Counter(0, _core=cluster3["alpha"])
        holder = Holder(target, _core=cluster3["alpha"])
        Core.get_meta_ref(_held_ref(cluster3, holder)).set_relocator(Pull())
        cluster3.move(holder, "beta")
        assert cluster3.locate(target) == "beta"
        cluster3.move(holder, "gamma")
        assert cluster3.locate(target) == "gamma"
        assert Core.get_meta_ref(_held_ref(cluster3, holder)).type_name == "pull"

    def test_stamp_state_survives_wire(self, cluster3):
        """Stamp's fallback configuration is part of the travelling state."""
        from repro.cluster.workload import Printer

        Printer("beta-p", _core=cluster3["beta"], _at="beta")
        printer = Printer("alpha-p", _core=cluster3["alpha"])
        holder = Holder(printer, _core=cluster3["alpha"])
        Core.get_meta_ref(_held_ref(cluster3, holder)).set_relocator(
            Stamp(fallback="link")
        )
        cluster3.move(holder, "beta")
        meta = Core.get_meta_ref(_held_ref(cluster3, holder))
        assert meta.type_name == "stamp"
        assert meta.get_relocator().fallback == "link"
        # gamma has no printer: fallback applies, move succeeds.
        cluster3.move(holder, "gamma")
        assert cluster3.locate(holder) == "gamma"

    def test_user_defined_relocator_travels(self, cluster3):
        """A user-defined relocator class rides the wire by module reference
        and keeps both its behaviour and its configuration."""
        small = DataSource(100, _core=cluster3["alpha"])
        holder = Holder(small, _core=cluster3["alpha"])
        Core.get_meta_ref(_held_ref(cluster3, holder)).set_relocator(
            SizeBound_(max_bytes=50_000)
        )
        cluster3.move(holder, "beta")
        assert cluster3.locate(small) == "beta"  # pulled (small enough)
        meta = Core.get_meta_ref(_held_ref(cluster3, holder))
        assert meta.type_name == "sizebound"
        assert meta.get_relocator().max_bytes == 50_000
        # Grow the target beyond the bound; the next move links instead.
        anchor = cluster3["beta"].repository.get(small._fargo_target_id)
        anchor.blob = bytes(200_000)
        cluster3.move(holder, "gamma")
        assert cluster3.locate(small) == "beta"  # left behind this time

    def test_duplicate_copies_on_every_hop(self, cluster3):
        source = DataSource(100, _core=cluster3["alpha"])
        worker = Worker(source, _core=cluster3["alpha"])
        anchor = cluster3["alpha"].repository.get(worker._fargo_target_id)
        Core.get_meta_ref(anchor.source).set_relocator(Duplicate())
        cluster3.move(worker, "beta")
        cluster3.move(worker, "gamma")
        beta_copies = [c for c in cluster3.complets_at("beta") if "DataSource" in c]
        gamma_copies = [c for c in cluster3.complets_at("gamma") if "DataSource" in c]
        assert len(beta_copies) == 1  # first hop's copy stays at beta
        assert len(gamma_copies) == 1  # second hop copies the beta copy
        assert cluster3.locate(source) == "alpha"  # original untouched
