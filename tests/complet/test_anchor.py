"""Tests for the Anchor base class and execution context."""

import pytest

from repro.complet.anchor import (
    Anchor,
    anchor_type_name,
    current_complet,
    current_core,
    execution_context,
    qualified_class_ref,
    resolve_class_ref,
)
from repro.errors import CompletError
from repro.util.ids import CompletId
from tests.anchors import Probe_


class TestIdentity:
    def test_uninstalled_anchor_has_no_id(self):
        probe = Probe_()
        assert not probe.is_installed
        with pytest.raises(CompletError):
            _ = probe.complet_id

    def test_installed_on_instantiation(self, cluster):
        from tests.anchors import Probe

        stub = Probe(_core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(stub._fargo_target_id)
        assert anchor.is_installed
        assert anchor.complet_id.birth_core == "alpha"
        assert anchor.complet_id.type_name == "Probe"

    def test_repr_shows_state(self):
        probe = Probe_()
        assert "uninstalled" in repr(probe)
        probe._complet_id = CompletId("x", 1, "Probe")
        assert "x/c1" in repr(probe)


class TestExecutionContext:
    def test_no_context_by_default(self):
        assert current_core() is None
        assert current_complet() is None

    def test_core_property_requires_context(self):
        probe = Probe_()
        with pytest.raises(CompletError):
            _ = probe.core

    def test_context_is_scoped(self, cluster):
        core = cluster["alpha"]
        cid = CompletId("alpha", 1, "T")
        with execution_context(core, cid):
            assert current_core() is core
            assert current_complet() == cid
            with execution_context(None, None):
                assert current_core() is None
            assert current_core() is core
        assert current_core() is None

    def test_core_visible_during_invocation(self, cluster):
        from tests.anchors import Probe

        stub = Probe(_core=cluster["alpha"])
        cluster.move(stub, "beta")
        history = stub.get_history()
        assert "post_arrival:beta" in history


class TestClassRefs:
    def test_type_name_strips_underscore(self):
        assert anchor_type_name(Probe_) == "Probe"

    def test_type_name_without_underscore(self):
        class Odd(Anchor):
            pass

        assert anchor_type_name(Odd) == "Odd"

    def test_qualified_ref_roundtrip(self):
        ref = qualified_class_ref(Probe_)
        assert ref == "tests.anchors:Probe_"
        assert resolve_class_ref(ref) is Probe_

    def test_resolve_non_class_raises(self):
        with pytest.raises(CompletError):
            resolve_class_ref("tests.anchors:__doc__")


class TestCallbacksDefaults:
    def test_default_callbacks_are_noops(self):
        anchor = Anchor()
        anchor.pre_departure("anywhere")
        anchor.pre_arrival()
        anchor.post_arrival()
        anchor.post_departure()
