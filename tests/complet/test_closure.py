"""Tests for complet closure computation and boundary enforcement."""

import pytest

from repro.complet.closure import compute_closure
from repro.errors import CompletBoundaryError, SerializationError
from repro.cluster.workload import DataSource, Echo, Echo_, Worker
from tests.anchors import Holder, Pair


class TestClosureScan:
    def test_size_reflects_content(self):
        small = compute_closure(Echo_("x"))
        big_anchor = Echo_("x")
        big_anchor.blob = bytes(50_000)
        big = compute_closure(big_anchor)
        assert big.size_bytes > small.size_bytes + 49_000

    def test_object_count_grows_with_graph(self):
        flat = Echo_("x")
        nested = Echo_("x")
        nested.tree = {"a": [{"b": [1, 2]}, {"c": "d"}]}
        assert compute_closure(nested).object_count > compute_closure(flat).object_count

    def test_no_outgoing_refs(self):
        info = compute_closure(Echo_("x"))
        assert info.outgoing == []

    def test_outgoing_stub_found(self, cluster):
        source = DataSource(100, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(worker._fargo_target_id)
        info = compute_closure(anchor)
        assert len(info.outgoing) == 1
        assert info.outgoing[0]._fargo_target_id == source._fargo_target_id

    def test_multiple_outgoing_deduplicated(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        pair = Pair(echo, echo, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(pair._fargo_target_id)
        info = compute_closure(anchor)
        # Both attributes hold the SAME stub object (materialized once
        # for the constructor call), so one boundary crossing is found.
        assert len(info.outgoing) == 1

    def test_distinct_stubs_both_reported(self, cluster):
        echo = Echo("e", _core=cluster["alpha"])
        other = Echo("o", _core=cluster["alpha"])
        pair = Pair(echo, other, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(pair._fargo_target_id)
        assert len(compute_closure(anchor).outgoing) == 2

    def test_stub_internals_not_traversed(self, cluster):
        """The scan must not recurse into the stub (tracker, Core...)."""
        source = DataSource(100, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(worker._fargo_target_id)
        info = compute_closure(anchor)
        # Size excludes the target's 100-byte blob entirely.
        lone = compute_closure(Worker.__mro__[0]._fargo_anchor_cls(None))
        assert abs(info.size_bytes - lone.size_bytes) < 200


class TestBoundaryEnforcement:
    def test_raw_foreign_anchor_rejected(self, cluster):
        victim = Echo("v", _core=cluster["alpha"])
        victim_anchor = cluster["alpha"].repository.get(victim._fargo_target_id)
        offender = Echo("o", _core=cluster["alpha"])
        offender_anchor = cluster["alpha"].repository.get(offender._fargo_target_id)
        offender_anchor.leak = victim_anchor  # direct anchor reference!
        with pytest.raises(CompletBoundaryError):
            compute_closure(offender_anchor)

    def test_move_refuses_boundary_violation(self, cluster):
        victim = Echo("v", _core=cluster["alpha"])
        victim_anchor = cluster["alpha"].repository.get(victim._fargo_target_id)
        offender = Echo("o", _core=cluster["alpha"])
        offender_anchor = cluster["alpha"].repository.get(offender._fargo_target_id)
        offender_anchor.leak = victim_anchor
        with pytest.raises(CompletBoundaryError):
            cluster.move(offender, "beta")

    def test_self_anchor_in_closure_allowed(self):
        anchor = Echo_("x")
        anchor.me = anchor  # cycle back to the root anchor is fine
        info = compute_closure(anchor)
        assert info.size_bytes > 0

    def test_unmarshalable_closure_reported(self):
        anchor = Echo_("x")
        anchor.handle = open("/dev/null", "rb")
        try:
            with pytest.raises(SerializationError):
                compute_closure(anchor)
        finally:
            anchor.handle.close()
