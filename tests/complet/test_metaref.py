"""Tests for meta references: reflection on complet references (§3.2)."""

import pytest

from repro.complet.relocators import Link, Pull
from repro.core.core import Core
from repro.errors import ConfigurationError, NotAStubError
from repro.cluster.workload import Counter, Echo


class TestReflection:
    def test_get_meta_ref(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        meta = Core.get_meta_ref(echo)
        assert isinstance(meta.get_relocator(), Link)
        assert meta.type_name == "link"

    def test_get_meta_ref_rejects_non_stub(self):
        with pytest.raises(NotAStubError):
            Core.get_meta_ref("not a stub")

    def test_paper_retyping_idiom(self, cluster):
        """The exact §3.2 pattern: check the type, then change it."""
        msg = Echo("m", _core=cluster["alpha"])
        meta_ref = Core.get_meta_ref(msg)
        if isinstance(meta_ref.get_relocator(), Link):
            meta_ref.set_relocator(Pull())
        assert isinstance(meta_ref.get_relocator(), Pull)

    def test_set_relocator_validates_type(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        with pytest.raises(ConfigurationError):
            Core.get_meta_ref(echo).set_relocator("pull")

    def test_retyping_fires_event(self, cluster):
        events = []
        cluster["alpha"].events.subscribe("referenceRetyped", events.append)
        echo = Echo("x", _core=cluster["alpha"])
        Core.get_meta_ref(echo).set_relocator(Pull())
        assert len(events) == 1
        assert events[0].data["old_type"] == "link"
        assert events[0].data["new_type"] == "pull"

    def test_invocation_syntax_unchanged_after_retype(self, cluster):
        """§3.2's key point: retyping never touches how the stub is used."""
        echo = Echo("same", _core=cluster["alpha"])
        before = echo.ping()
        Core.get_meta_ref(echo).set_relocator(Pull())
        assert echo.ping() == before


class TestTargetReflection:
    def test_target_id(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        meta = Core.get_meta_ref(echo)
        assert meta.get_target_id() == echo._fargo_target_id

    def test_target_type(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        assert Core.get_meta_ref(echo).get_target_type() == "repro.cluster.workload:Echo_"

    def test_target_location_local(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        assert Core.get_meta_ref(echo).get_target_location() == "alpha"
        assert Core.get_meta_ref(echo).is_local

    def test_target_location_after_moves(self, cluster3):
        echo = Echo("x", _core=cluster3["alpha"])
        cluster3.move_via_host(echo, "beta")
        cluster3.move_via_host(echo, "gamma")
        meta = Core.get_meta_ref(echo)
        assert meta.get_target_location() == "gamma"
        assert not meta.is_local


class TestAccounting:
    def test_invocation_count(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        meta = Core.get_meta_ref(counter)
        for _ in range(5):
            counter.increment()
        assert meta.invocation_count == 5

    def test_bytes_transferred_grow(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        meta = Core.get_meta_ref(echo)
        echo.echo("a")
        small = meta.bytes_transferred
        echo.echo("a" * 10_000)
        assert meta.bytes_transferred > small + 10_000

    def test_counts_are_per_reference(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        other = cluster.stub_at("alpha", counter)
        counter.increment()
        counter.increment()
        other.increment()
        assert Core.get_meta_ref(counter).invocation_count == 2
        assert Core.get_meta_ref(other).invocation_count == 1


class TestNewReference:
    def test_independent_meta_reference(self, cluster):
        """Core.new_reference: same complet, separately typable reference."""
        from repro.errors import NotAStubError

        counter = Counter(0, _core=cluster["alpha"])
        other = Core.new_reference(counter)
        Core.get_meta_ref(other).set_relocator(Pull())
        assert Core.get_meta_ref(counter).type_name == "link"
        assert Core.get_meta_ref(other).type_name == "pull"
        assert other._fargo_tracker is counter._fargo_tracker  # one tracker
        assert other.increment() == 1
        assert counter.read() == 1  # same complet behind both
        with pytest.raises(NotAStubError):
            Core.new_reference("nope")
