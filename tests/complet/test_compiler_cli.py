"""Tests for the offline FarGo Compiler CLI."""

import io

from repro.complet.compiler import (
    compile_module,
    describe_complet,
    find_anchor_classes,
    main,
)
from repro.cluster import workload
from repro.cluster.workload import Counter_, Echo_


class TestDiscovery:
    def test_finds_module_anchors(self):
        found = find_anchor_classes(workload)
        names = [cls.__name__ for cls in found]
        assert "Echo_" in names
        assert "Counter_" in names
        assert "Anchor" not in names

    def test_sorted_deterministically(self):
        found = find_anchor_classes(workload)
        assert [c.__name__ for c in found] == sorted(c.__name__ for c in found)

    def test_imported_anchors_excluded(self):
        from tests import anchors as test_anchors

        found = find_anchor_classes(test_anchors)
        # Probe_ is defined there; workload classes are not re-reported.
        names = [cls.__name__ for cls in found]
        assert "Probe_" in names
        assert "Echo_" not in names


class TestDescription:
    def test_describe_lists_interface(self):
        report = describe_complet(Echo_)
        assert "complet Echo (from Echo_)" in report
        assert "echo(self, value)" in report
        assert "ping(self)" in report

    def test_describe_includes_properties(self):
        from tests.anchors import Propertied_

        report = describe_complet(Propertied_)
        assert "properties:" in report
        assert "answer" in report

    def test_describe_empty_interface(self):
        from repro.complet.anchor import Anchor

        class Bare_(Anchor):
            pass

        assert "(none)" in describe_complet(Bare_)


class TestCli:
    def test_compile_module_reports(self):
        out = io.StringIO()
        errors = compile_module("repro.cluster.workload", out=out)
        text = out.getvalue()
        assert errors == 0
        assert "complets compiled, 0 errors" in text
        assert "complet Echo" in text

    def test_compile_module_import_failure(self):
        out = io.StringIO()
        assert compile_module("no.such.module", out=out) == 1
        assert "cannot import" in out.getvalue()

    def test_compile_module_without_anchors(self):
        out = io.StringIO()
        assert compile_module("repro.util.ids", out=out) == 0
        assert "no anchor classes" in out.getvalue()

    def test_main_usage(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_main_success(self, capsys):
        assert main(["repro.cluster.workload"]) == 0

    def test_main_bad_anchor_fails(self, capsys):
        # tests.badanchors defines an anchor violating the underscore rule.
        assert main(["tests.badanchors"]) == 1
        assert "error" in capsys.readouterr().out
