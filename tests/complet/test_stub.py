"""Tests for stubs and the stub compiler (the FarGo Compiler analogue)."""

import inspect

import pytest

from repro.complet.anchor import Anchor
from repro.complet.stub import Stub, compile_complet
from repro.errors import (
    CompletError,
    NotAnAnchorError,
    SerializationError,
    StubGenerationError,
)
from repro.cluster.workload import Counter, Echo, Echo_
from tests.anchors import Propertied, Propertied_


class TestCompiler:
    def test_stub_class_name_drops_underscore(self):
        assert compile_complet(Echo_).__name__ == "Echo"

    def test_stub_class_cached(self):
        assert compile_complet(Echo_) is compile_complet(Echo_)

    def test_public_methods_mirrored(self):
        stub_cls = compile_complet(Echo_)
        assert hasattr(stub_cls, "echo")
        assert hasattr(stub_cls, "ping")

    def test_private_methods_not_mirrored(self):
        class WithPrivate_(Anchor):
            def visible(self):
                return 1

            def _hidden(self):
                return 2

        stub_cls = compile_complet(WithPrivate_)
        assert hasattr(stub_cls, "visible")
        assert not hasattr(stub_cls, "_hidden")

    def test_anchor_machinery_not_mirrored(self):
        stub_cls = compile_complet(Echo_)
        assert not hasattr(stub_cls, "pre_departure")
        assert not hasattr(stub_cls, "complet_id")

    def test_signature_preserved(self):
        stub_cls = compile_complet(Echo_)
        signature = inspect.signature(stub_cls.echo)
        assert list(signature.parameters) == ["self", "value"]

    def test_docstring_preserved(self):
        stub_cls = compile_complet(Echo_)
        assert "unchanged" in stub_cls.echo.__doc__

    def test_properties_mirrored(self):
        assert isinstance(
            inspect.getattr_static(Propertied, "answer"), property
        )

    def test_requires_anchor_subclass(self):
        class NotAnchor:
            pass

        with pytest.raises(NotAnAnchorError):
            compile_complet(NotAnchor)

    def test_requires_underscore_convention(self):
        class BadName(Anchor):
            pass

        with pytest.raises(StubGenerationError):
            compile_complet(BadName)

    def test_anchor_base_rejected(self):
        with pytest.raises(StubGenerationError):
            compile_complet(Anchor)

    def test_module_attribution(self):
        assert compile_complet(Echo_).__module__ == "repro.cluster.workload"


class TestInstantiation:
    def test_constructor_creates_complet(self, cluster):
        stub = Echo("tag", _core=cluster["alpha"])
        assert len(cluster["alpha"].repository) == 1
        assert stub.ping() == "tag"

    def test_no_core_context_raises(self):
        with pytest.raises(CompletError):
            Echo("lost")

    def test_remote_instantiation(self, cluster):
        stub = Echo("far", _at="beta", _core=cluster["alpha"])
        assert len(cluster["beta"].repository) == 1
        assert len(cluster["alpha"].repository) == 0
        assert stub.ping() == "far"
        assert cluster.locate(stub) == "beta"

    def test_constructor_args_passed_by_value(self, cluster):
        shared = {"mutable": [1]}

        class Keeper_(Anchor):
            def __init__(self, data):
                self.data = data

            def read(self):
                return self.data

        Keeper = compile_complet(Keeper_)
        stub = Keeper(shared, _core=cluster["alpha"])
        shared["mutable"].append(2)
        assert stub.read() == {"mutable": [1]}

    def test_constructor_complet_ref_by_reference(self, cluster):
        """A stub passed to a constructor arrives as a reference, not a copy."""
        counter = Counter(0, _core=cluster["alpha"])

        class User_(Anchor):
            def __init__(self, target):
                self.target = target

            def bump(self):
                return self.target.increment()

        User = compile_complet(User_)
        user = User(counter, _core=cluster["beta"], _at="beta")
        assert user.bump() == 1
        assert counter.read() == 1  # the same complet was mutated

    def test_invalid_core_kwarg_type(self):
        with pytest.raises(CompletError):
            Echo("x", _core=None)


class TestStubBehaviour:
    def test_property_read_through_stub(self, cluster):
        stub = Propertied(41, _core=cluster["alpha"])
        assert stub.answer == 42
        stub.bump()
        assert stub.answer == 43

    def test_property_read_remote(self, cluster):
        stub = Propertied(10, _core=cluster["alpha"])
        cluster.move(stub, "beta")
        assert stub.answer == 11

    def test_repr_names_target(self, cluster):
        stub = Echo("x", _core=cluster["alpha"])
        assert "Echo" in repr(stub)
        assert "link" in repr(stub)

    def test_direct_pickle_rejected(self, cluster):
        import pickle

        stub = Echo("x", _core=cluster["alpha"])
        with pytest.raises(SerializationError):
            pickle.dumps(stub)

    def test_stub_is_stub_instance(self, cluster):
        stub = Echo("x", _core=cluster["alpha"])
        assert isinstance(stub, Stub)

    def test_two_stubs_same_target_share_tracker(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        holder_core = cluster["alpha"]
        second = cluster.stub_at("alpha", counter)
        assert second is not counter
        assert second._fargo_tracker is counter._fargo_tracker
        assert holder_core.repository.tracker_count() == 1
