"""Tests for the four relocation semantics and user-defined relocators (§3.3)."""

import pytest

from repro.complet.relocators import (
    BUILTIN_RELOCATORS,
    Duplicate,
    Link,
    Pull,
    Relocator,
    Stamp,
    relocator_from_name,
)
from repro.core.core import Core
from repro.errors import ConfigurationError, StampResolutionError
from repro.cluster.workload import DataSource, Desktop, Printer, Worker
from tests.anchors import Holder, Pair, SizeBound_


def _retype(cluster, holder_stub, attr, relocator):
    """Retype the reference held in `attr` of the complet behind holder_stub."""
    core = cluster.core(cluster.locate(holder_stub))
    anchor = core.repository.get(holder_stub._fargo_target_id)
    Core.get_meta_ref(getattr(anchor, attr)).set_relocator(relocator)


class TestRelocatorBasics:
    def test_builtin_registry(self):
        assert set(BUILTIN_RELOCATORS) == {"link", "pull", "duplicate", "stamp"}

    def test_from_name(self):
        assert isinstance(relocator_from_name("pull"), Pull)
        assert isinstance(relocator_from_name("LINK"), Link)

    def test_from_unknown_name(self):
        with pytest.raises(ConfigurationError):
            relocator_from_name("teleport")

    def test_equality_by_type_and_state(self):
        assert Link() == Link()
        assert Pull() != Link()
        assert Stamp("link") != Stamp("error")
        assert Stamp("link") == Stamp("link")

    def test_parameter_degrading_defaults_to_link(self):
        for relocator in (Link(), Pull(), Duplicate(), Stamp()):
            assert isinstance(relocator.degraded_for_parameter(), Link)

    def test_stamp_fallback_validated(self):
        with pytest.raises(ConfigurationError):
            Stamp(fallback="explode")

    def test_picklable(self):
        import pickle

        for relocator in (Link(), Pull(), Duplicate(), Stamp("link")):
            assert pickle.loads(pickle.dumps(relocator)) == relocator


class TestLinkSemantics:
    def test_link_target_stays_behind(self, cluster):
        source = DataSource(100, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        cluster.move(worker, "beta")
        assert cluster.locate(worker) == "beta"
        assert cluster.locate(source) == "alpha"

    def test_link_keeps_tracking_after_both_move(self, cluster3):
        source = DataSource(100, _core=cluster3["alpha"])
        worker = Worker(source, _core=cluster3["alpha"])
        cluster3.move(worker, "beta")
        cluster3.move(source, "gamma")
        assert worker.work(1) == 100  # reference still resolves (100-byte blob)


class TestPullSemantics:
    def test_pull_target_moves_along(self, cluster):
        source = DataSource(100, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        _retype(cluster, worker, "source", Pull())
        cluster.move(worker, "beta")
        assert cluster.locate(worker) == "beta"
        assert cluster.locate(source) == "beta"

    def test_pull_chain_recursive(self, cluster):
        """A pulls B pulls C: all three move in one group."""
        c = DataSource(50, _core=cluster["alpha"])
        b = Worker(c, _core=cluster["alpha"])
        a = Holder(b, _core=cluster["alpha"])
        _retype(cluster, a, "ref", Pull())
        _retype(cluster, b, "source", Pull())
        cluster.move(a, "beta")
        for stub in (a, b, c):
            assert cluster.locate(stub) == "beta"

    def test_pull_single_message(self, cluster):
        source = DataSource(100, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        _retype(cluster, worker, "source", Pull())
        from repro.net.messages import MessageKind

        before = cluster.stats.by_kind[MessageKind.MOVE_COMPLET]
        cluster.move(worker, "beta")
        # one request + one reply, regardless of group size
        assert cluster.stats.by_kind[MessageKind.MOVE_COMPLET] - before == 2

    def test_pull_remote_target_follows(self, cluster3):
        """Pulling a target hosted on a third Core triggers a follow-up move."""
        source = DataSource(100, _core=cluster3["gamma"])
        worker = Worker(source, _core=cluster3["alpha"])
        _retype(cluster3, worker, "source", Pull())
        cluster3.move(worker, "beta")
        assert cluster3.locate(worker) == "beta"
        assert cluster3.locate(source) == "beta"

    def test_mutual_pull_moves_both_once(self, cluster):
        """Two complets pulling each other travel as one group."""
        left = Holder(None, _core=cluster["alpha"])
        right = Holder(left, _core=cluster["alpha"])
        left.set_ref(right)
        _retype(cluster, left, "ref", Pull())
        _retype(cluster, right, "ref", Pull())
        cluster.move(left, "beta")
        assert cluster.locate(left) == "beta"
        assert cluster.locate(right) == "beta"


class TestDuplicateSemantics:
    def test_copy_travels_original_stays(self, cluster):
        source = DataSource(100, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        _retype(cluster, worker, "source", Duplicate())
        cluster.move(worker, "beta")
        assert cluster.locate(source) == "alpha"  # original untouched
        beta_ids = cluster.complets_at("beta")
        assert any("DataSource" in cid for cid in beta_ids)

    def test_copy_is_independent_state(self, cluster):
        source = DataSource(100, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        _retype(cluster, worker, "source", Duplicate())
        original_reads = source.checksum() and 0
        cluster.move(worker, "beta")
        worker.work(3)  # reads go to the copy at beta
        anchor = cluster["alpha"].repository.get(source._fargo_target_id)
        assert anchor.reads <= 1  # only our checksum probe touched it

    def test_copy_gets_fresh_identity(self, cluster):
        source = DataSource(100, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        _retype(cluster, worker, "source", Duplicate())
        cluster.move(worker, "beta")
        beta = cluster["beta"]
        worker_anchor = beta.repository.get(worker._fargo_target_id)
        copy_id = worker_anchor.source._fargo_target_id
        assert copy_id != source._fargo_target_id

    def test_duplicate_remote_target(self, cluster3):
        """Duplicating a target hosted elsewhere fetches a copy first."""
        source = DataSource(100, _core=cluster3["gamma"])
        worker = Worker(source, _core=cluster3["alpha"])
        _retype(cluster3, worker, "source", Duplicate())
        cluster3.move(worker, "beta")
        assert cluster3.locate(source) == "gamma"
        assert worker.work(1) == 100  # served by the copy at beta

    def test_one_copy_for_two_duplicate_refs(self, cluster):
        shared = DataSource(100, _core=cluster["alpha"])
        pair = Pair(shared, shared, _core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(pair._fargo_target_id)
        Core.get_meta_ref(anchor.left).set_relocator(Duplicate())
        Core.get_meta_ref(anchor.right).set_relocator(Duplicate())
        cluster.move(pair, "beta")
        copies = [c for c in cluster.complets_at("beta") if "DataSource" in c]
        assert len(copies) == 1


class TestStampSemantics:
    def test_reconnects_to_local_instance(self, cluster):
        printer_a = Printer("site-a", _core=cluster["alpha"])
        printer_b = Printer("site-b", _core=cluster["beta"])
        desk = Desktop(printer_a, _core=cluster["alpha"])
        _retype(cluster, desk, "printer", Stamp())
        assert desk.print_report("r1") == "printed at site-a: r1"
        cluster.move(desk, "beta")
        assert desk.print_report("r2") == "printed at site-b: r2"

    def test_missing_type_aborts_move(self, cluster):
        printer = Printer("site-a", _core=cluster["alpha"])
        desk = Desktop(printer, _core=cluster["alpha"])
        _retype(cluster, desk, "printer", Stamp())
        with pytest.raises(StampResolutionError):
            cluster.move(desk, "beta")  # beta has no printer
        assert cluster.locate(desk) == "alpha"  # move aborted

    def test_link_fallback_keeps_original(self, cluster):
        printer = Printer("site-a", _core=cluster["alpha"])
        desk = Desktop(printer, _core=cluster["alpha"])
        _retype(cluster, desk, "printer", Stamp(fallback="link"))
        cluster.move(desk, "beta")
        # No printer at beta: the reference degraded to a link back home.
        assert desk.print_report("r") == "printed at site-a: r"

    def test_deterministic_pick_among_candidates(self, cluster):
        first = Printer("beta-one", _core=cluster["beta"])
        second = Printer("beta-two", _core=cluster["beta"])
        printer = Printer("site-a", _core=cluster["alpha"])
        desk = Desktop(printer, _core=cluster["alpha"])
        _retype(cluster, desk, "printer", Stamp())
        cluster.move(desk, "beta")
        assert desk.print_report("r") == "printed at beta-one: r"


class TestUserDefinedRelocator:
    def test_sizebound_pulls_small_target(self, cluster):
        source = DataSource(100, _core=cluster["alpha"])  # tiny closure
        worker = Worker(source, _core=cluster["alpha"])
        _retype(cluster, worker, "source", SizeBound_(max_bytes=100_000))
        cluster.move(worker, "beta")
        assert cluster.locate(source) == "beta"

    def test_sizebound_links_large_target(self, cluster):
        source = DataSource(200_000, _core=cluster["alpha"])  # big closure
        worker = Worker(source, _core=cluster["alpha"])
        _retype(cluster, worker, "source", SizeBound_(max_bytes=1_000))
        cluster.move(worker, "beta")
        assert cluster.locate(source) == "alpha"
        assert worker.work(1) == 1024  # link still resolves (big blob)

    def test_custom_relocator_is_a_relocator(self):
        assert isinstance(SizeBound_(), Relocator)
        assert SizeBound_().type_name == "sizebound"
