"""Tests for trackers: states, chains, shortening, collectability (§3.1)."""

import pytest

from repro.complet.tracker import Tracker, TrackerAddress
from repro.errors import CompletError, DanglingReferenceError
from repro.util.ids import CompletId, TrackerId
from repro.cluster.workload import Counter, Echo


def _tracker():
    return Tracker(
        TrackerId("alpha", 1), CompletId("alpha", 1, "Echo"), "repro.cluster.workload:Echo_"
    )


class TestStates:
    def test_fresh_tracker_is_dangling(self):
        tracker = _tracker()
        assert tracker.is_dangling
        assert not tracker.is_local
        assert not tracker.is_forwarding

    def test_point_to_local(self):
        from repro.cluster.workload import Echo_

        tracker = _tracker()
        tracker.point_to_local(Echo_("x"))
        assert tracker.is_local
        assert not tracker.is_forwarding

    def test_point_to_remote(self):
        tracker = _tracker()
        tracker.point_to(TrackerAddress("beta", 2))
        assert tracker.is_forwarding
        assert tracker.next_hop == TrackerAddress("beta", 2)

    def test_self_forwarding_rejected(self):
        tracker = _tracker()
        with pytest.raises(CompletError):
            tracker.point_to(tracker.address)

    def test_mark_dangling(self):
        tracker = _tracker()
        tracker.point_to(TrackerAddress("beta", 2))
        tracker.mark_dangling()
        assert tracker.is_dangling

    def test_address_roundtrip(self):
        tracker = _tracker()
        assert tracker.address == TrackerAddress("alpha", 1)
        assert tracker.address.tracker_id == TrackerId("alpha", 1)


class TestCollectability:
    def test_local_tracker_never_collectable(self):
        from repro.cluster.workload import Echo_

        tracker = _tracker()
        tracker.point_to_local(Echo_("x"))
        assert not tracker.is_collectable

    def test_pointed_tracker_not_collectable(self):
        tracker = _tracker()
        tracker.point_to(TrackerAddress("beta", 2))
        tracker.remote_pointers.add(TrackerAddress("gamma", 3))
        assert not tracker.is_collectable

    def test_orphan_tracker_collectable(self):
        tracker = _tracker()
        tracker.point_to(TrackerAddress("beta", 2))
        assert tracker.is_collectable

    def test_live_stub_prevents_collection(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        cluster.move(echo, "beta")
        tracker = echo._fargo_tracker
        assert tracker.live_stub_count == 1
        assert not tracker.is_collectable


class TestChains:
    """End-to-end chain behaviour through a real cluster (Figure 2)."""

    def test_chain_forms_across_hops(self, cluster4):
        counter = Counter(0, _core=cluster4["alpha"])
        origin_tracker = counter._fargo_tracker
        for dest in ("beta", "gamma", "delta"):
            cluster4.move_via_host(counter, dest)
        # alpha's tracker saw only the first hop; the chain leads onward.
        assert origin_tracker.next_hop.core == "beta"
        beta_tracker = cluster4["beta"].repository.existing_tracker(
            counter._fargo_target_id
        )
        assert beta_tracker.next_hop.core == "gamma"

    def test_invocation_shortens_whole_chain(self, cluster4):
        counter = Counter(0, _core=cluster4["alpha"])
        for dest in ("beta", "gamma", "delta"):
            cluster4.move_via_host(counter, dest)
        assert counter.increment() == 1
        # Every tracker on the path now points straight at delta.
        for name in ("alpha", "beta", "gamma"):
            tracker = cluster4[name].repository.existing_tracker(
                counter._fargo_target_id
            )
            assert tracker.next_hop.core == "delta", name

    def test_second_invocation_is_single_hop(self, cluster4):
        counter = Counter(0, _core=cluster4["alpha"])
        for dest in ("beta", "gamma", "delta"):
            cluster4.move_via_host(counter, dest)
        counter.increment()
        forwarded_before = cluster4["beta"].invocation.forwarded
        counter.increment()
        assert cluster4["beta"].invocation.forwarded == forwarded_before

    def test_shortening_enables_gc(self, cluster4):
        counter = Counter(0, _core=cluster4["alpha"])
        for dest in ("beta", "gamma", "delta"):
            cluster4.move_via_host(counter, dest)
        counter.increment()  # shortens; intermediate trackers unreferenced
        collected = cluster4.collect_all_trackers()
        assert collected >= 2  # beta's and gamma's trackers
        assert cluster4["beta"].repository.existing_tracker(
            counter._fargo_target_id
        ) is None

    def test_dangling_after_destroy(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        cluster["alpha"].repository.destroy(echo._fargo_target_id)
        with pytest.raises(DanglingReferenceError):
            echo.ping()

    def test_locate_walks_chain(self, cluster4):
        counter = Counter(0, _core=cluster4["alpha"])
        for dest in ("beta", "gamma"):
            cluster4.move(counter, dest)
        assert cluster4.locate(counter) == "gamma"

    def test_move_back_and_forth(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        for _ in range(3):
            cluster.move(counter, "beta")
            cluster.move(counter, "alpha")
        assert counter.increment() == 1
        assert cluster.locate(counter) == "alpha"
