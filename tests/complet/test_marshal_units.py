"""Unit tests for the movement planner and marshaler internals."""

import pytest

from repro.complet.marshal import (
    CloneEntry,
    MovementMarshaler,
    MovementPlan,
    MovementUnmarshaler,
    marshal_clone,
    unmarshal_clone,
)
from repro.complet.relocators import Duplicate, Pull
from repro.complet.tokens import InGroupToken, RefToken
from repro.core.core import Core
from repro.errors import SerializationError
from repro.net.serializer import PLAIN
from repro.cluster.workload import Counter, DataSource, Echo, Worker
from tests.anchors import Holder


def _anchor(cluster, stub):
    return cluster.core(cluster.locate(stub)).repository.get(stub._fargo_target_id)


class TestMovementPlan:
    def test_single_complet_plan(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        plan = MovementPlan(cluster["alpha"], _anchor(cluster, echo))
        assert list(plan.movers) == [echo._fargo_target_id]
        assert plan.local_clones == {}
        assert plan.remote_pulls == []

    def test_pull_extends_group(self, cluster):
        target = Counter(0, _core=cluster["alpha"])
        holder = Holder(target, _core=cluster["alpha"])
        anchor = _anchor(cluster, holder)
        Core.get_meta_ref(anchor.ref).set_relocator(Pull())
        plan = MovementPlan(cluster["alpha"], anchor)
        assert set(plan.movers) == {
            holder._fargo_target_id,
            target._fargo_target_id,
        }

    def test_remote_pull_recorded_not_grouped(self, cluster):
        target = Counter(0, _core=cluster["beta"], _at="beta")
        holder = Holder(target, _core=cluster["alpha"])
        anchor = _anchor(cluster, holder)
        Core.get_meta_ref(anchor.ref).set_relocator(Pull())
        plan = MovementPlan(cluster["alpha"], anchor)
        assert list(plan.movers) == [holder._fargo_target_id]
        assert len(plan.remote_pulls) == 1

    def test_duplicate_assigns_fresh_clone_id(self, cluster):
        source = DataSource(50, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        anchor = _anchor(cluster, worker)
        Core.get_meta_ref(anchor.source).set_relocator(Duplicate())
        plan = MovementPlan(cluster["alpha"], anchor)
        clone_id, clone_anchor = plan.local_clones[source._fargo_target_id]
        assert clone_id != source._fargo_target_id
        assert clone_anchor is _anchor(cluster, source)
        assert clone_id in plan.group_ids

    def test_root_first_in_movers(self, cluster):
        target = Counter(0, _core=cluster["alpha"])
        holder = Holder(target, _core=cluster["alpha"])
        anchor = _anchor(cluster, holder)
        Core.get_meta_ref(anchor.ref).set_relocator(Pull())
        plan = MovementPlan(cluster["alpha"], anchor)
        assert next(iter(plan.movers)) == holder._fargo_target_id


class TestMarshalerPayload:
    def test_payload_metadata(self, cluster):
        echo = Echo("x", _core=cluster["alpha"])
        plan = MovementPlan(cluster["alpha"], _anchor(cluster, echo))
        payload = MovementMarshaler(cluster["alpha"], plan).payload(None)
        assert payload.source_core == "alpha"
        assert payload.member_ids == [echo._fargo_target_id]
        member = payload.members[0]
        assert member.source_tracker.core == "alpha"

    def test_payload_is_plain_picklable(self, cluster):
        """The whole movement payload crosses in one PLAIN message."""
        target = Counter(0, _core=cluster["alpha"])
        holder = Holder(target, _core=cluster["alpha"])
        anchor = _anchor(cluster, holder)
        Core.get_meta_ref(anchor.ref).set_relocator(Pull())
        plan = MovementPlan(cluster["alpha"], anchor)
        payload = MovementMarshaler(cluster["alpha"], plan).payload(None)
        assert PLAIN.roundtrip(payload).member_ids == payload.member_ids

    def test_in_group_references_tokenized(self, cluster):
        target = Counter(0, _core=cluster["alpha"])
        holder = Holder(target, _core=cluster["alpha"])
        anchor = _anchor(cluster, holder)
        Core.get_meta_ref(anchor.ref).set_relocator(Pull())
        plan = MovementPlan(cluster["alpha"], anchor)
        marshaler = MovementMarshaler(cluster["alpha"], plan)
        token = marshaler.reference_token(anchor.ref, Pull())
        assert isinstance(token, InGroupToken)

    def test_outside_references_tokenized_as_ref(self, cluster):
        target = Counter(0, _core=cluster["alpha"])
        holder = Holder(target, _core=cluster["alpha"])
        anchor = _anchor(cluster, holder)  # link: target stays
        plan = MovementPlan(cluster["alpha"], anchor)
        marshaler = MovementMarshaler(cluster["alpha"], plan)
        token = marshaler.reference_token(anchor.ref, anchor.ref._fargo_meta.get_relocator())
        assert isinstance(token, RefToken)
        assert token.target_id == target._fargo_target_id


class TestCloneStreams:
    def test_clone_roundtrip(self, cluster):
        source = DataSource(100, _core=cluster["alpha"])
        anchor = _anchor(cluster, source)
        clone_id = cluster["alpha"].repository.new_complet_id(anchor)
        entry = marshal_clone(cluster["alpha"], anchor, clone_id)
        clone = unmarshal_clone(cluster["beta"], entry)
        assert clone.complet_id == clone_id
        assert clone.blob == anchor.blob
        assert clone is not anchor

    def test_clone_outgoing_refs_degrade_to_link(self, cluster):
        source = DataSource(100, _core=cluster["alpha"])
        worker = Worker(source, _core=cluster["alpha"])
        anchor = _anchor(cluster, worker)
        Core.get_meta_ref(anchor.source).set_relocator(Pull())
        clone_id = cluster["alpha"].repository.new_complet_id(anchor)
        entry = marshal_clone(cluster["alpha"], anchor, clone_id)
        clone = unmarshal_clone(cluster["beta"], entry)
        assert Core.get_meta_ref(clone.source).type_name == "link"

    def test_corrupt_clone_stream_rejected(self, cluster):
        entry = CloneEntry(
            cluster["alpha"].repository.new_complet_id(Echo.__mro__[0]._fargo_anchor_cls("x")),
            "repro.cluster.workload:Echo_",
            PLAIN.dumps("not an anchor"),
        )
        with pytest.raises(SerializationError):
            unmarshal_clone(cluster["beta"], entry)


class TestUnmarshaler:
    def test_group_roundtrip_through_objects(self, cluster):
        target = Counter(3, _core=cluster["alpha"])
        holder = Holder(target, _core=cluster["alpha"])
        anchor = _anchor(cluster, holder)
        Core.get_meta_ref(anchor.ref).set_relocator(Pull())
        plan = MovementPlan(cluster["alpha"], anchor)
        payload = MovementMarshaler(cluster["alpha"], plan).payload(None)
        shipped = PLAIN.roundtrip(payload)
        result = MovementUnmarshaler(cluster["beta"], shipped).load()
        movers = list(result.movers.values())
        assert len(movers) == 2
        arrived_holder = result.movers[holder._fargo_target_id]
        arrived_counter = result.movers[target._fargo_target_id]
        # The intra-group reference is wired to beta's tracker for the
        # counter that travelled in the same stream:
        assert arrived_holder.ref._fargo_target_id == target._fargo_target_id
        assert arrived_counter.value == 3
