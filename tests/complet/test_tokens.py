"""Tests for wire tokens: equality, hashing (decode memoization relies on it)."""

import pickle

from repro.complet.relocators import Duplicate, Link, Pull, Stamp
from repro.complet.tokens import CloneToken, InGroupToken, RefToken, StampToken
from repro.complet.tracker import TrackerAddress
from repro.util.ids import CompletId

CID = CompletId("a", 1, "Echo")
ADDR = TrackerAddress("a", 1)
REF = "repro.cluster.workload:Echo_"


class TestEqualityAndHashing:
    def test_ref_token_equality(self):
        assert RefToken(CID, REF, ADDR, Link()) == RefToken(CID, REF, ADDR, Link())

    def test_ref_token_hashable(self):
        """The decode memo keys on tokens: equal tokens must hash equal."""
        a = RefToken(CID, REF, ADDR, Link())
        b = RefToken(CID, REF, ADDR, Link())
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_different_relocator_differs(self):
        assert RefToken(CID, REF, ADDR, Link()) != RefToken(CID, REF, ADDR, Pull())

    def test_different_target_differs(self):
        other = CompletId("a", 2, "Echo")
        assert RefToken(CID, REF, ADDR, Link()) != RefToken(other, REF, ADDR, Link())

    def test_in_group_token(self):
        assert InGroupToken(CID, REF, Pull()) == InGroupToken(CID, REF, Pull())
        assert hash(InGroupToken(CID, REF, Pull())) == hash(InGroupToken(CID, REF, Pull()))

    def test_clone_token(self):
        assert CloneToken(CID, REF, Duplicate()) == CloneToken(CID, REF, Duplicate())

    def test_stamp_token_with_fallback(self):
        fallback = RefToken(CID, REF, ADDR, Link())
        a = StampToken(REF, Stamp("link"), fallback)
        b = StampToken(REF, Stamp("link"), fallback)
        assert a == b
        assert hash(a) == hash(b)


class TestWireFormat:
    def test_all_tokens_picklable(self):
        tokens = [
            RefToken(CID, REF, ADDR, Link()),
            InGroupToken(CID, REF, Pull()),
            CloneToken(CID, REF, Duplicate()),
            StampToken(REF, Stamp(), None),
            StampToken(REF, Stamp("link"), RefToken(CID, REF, ADDR, Link())),
        ]
        for token in tokens:
            assert pickle.loads(pickle.dumps(token)) == token

    def test_tokens_are_immutable(self):
        token = RefToken(CID, REF, ADDR, Link())
        try:
            token.target_id = CompletId("b", 2)  # type: ignore[misc]
            mutated = True
        except AttributeError:
            mutated = False
        assert not mutated
