"""Tests for weak-mobility continuations and movement callbacks (§3.3)."""

import pytest

from repro.complet.anchor import Anchor
from repro.complet.continuation import Continuation
from repro.complet.stub import compile_complet
from repro.core.carrier import Carrier
from repro.errors import CompletError, ContinuationError
from tests.anchors import Probe, Probe_


class TestContinuationObject:
    def test_resolve_bound_method(self):
        probe = Probe_()
        cont = Continuation("note", ("entry",))
        cont.resolve(probe)("from-continuation")
        assert probe.history == ["from-continuation"]

    def test_resolve_missing_method(self):
        with pytest.raises(ContinuationError):
            Continuation("does_not_exist").resolve(Probe_())

    def test_resolve_non_callable(self):
        class Odd_(Anchor):
            attribute = 42

        with pytest.raises(ContinuationError):
            Continuation("attribute").resolve(Odd_())


class TestMovementCallbacks:
    def test_callback_order_single_move(self, cluster):
        probe = Probe(_core=cluster["alpha"])
        cluster.move(probe, "beta")
        history = probe.get_history()
        assert history == [
            "pre_departure:beta",
            "pre_arrival",
            "post_arrival:beta",
        ]
        # post_departure ran on the *old copy*, which stayed behind.
        # The moved complet's history was marshaled before it fired.

    def test_post_departure_runs_on_old_copy(self, cluster):
        probe = Probe(_core=cluster["alpha"])
        anchor = cluster["alpha"].repository.get(probe._fargo_target_id)
        cluster.move(probe, "beta")
        assert "post_departure" in anchor.history

    def test_callbacks_fire_per_hop(self, cluster3):
        probe = Probe(_core=cluster3["alpha"])
        cluster3.move(probe, "beta")
        cluster3.move(probe, "gamma")
        history = probe.get_history()
        assert history.count("pre_arrival") == 2
        assert "post_arrival:beta" in history
        assert "post_arrival:gamma" in history


class TestMoveWithContinuation:
    def test_continuation_invoked_at_destination(self, cluster):
        probe = Probe(_core=cluster["alpha"])
        Carrier.move(probe, "beta", "note", ("continued",))
        # Continuations run detached (the paper starts a thread); drain
        # the virtual timeline to let it fire.
        cluster.drain()
        history = probe.get_history()
        assert history[-1] == "continued"
        assert history[-2] == "post_arrival:beta"  # after post_arrival

    def test_continuation_with_kwargs(self, cluster):
        probe = Probe(_core=cluster["alpha"])
        cluster["alpha"].move(probe, "beta", "note", kwargs={"entry": "kw"})
        cluster.drain()
        assert probe.get_history()[-1] == "kw"

    def test_missing_continuation_method_fails_move(self, cluster):
        probe = Probe(_core=cluster["alpha"])
        with pytest.raises(ContinuationError):
            Carrier.move(probe, "beta", "no_such_method")

    def test_self_move_figure3_style(self, cluster):
        """A complet moves itself by passing its own anchor to Carrier.move."""
        from tests.anchors import Roamer

        roamer = Roamer(_core=cluster["alpha"])
        roamer.roam("beta")
        cluster.drain()
        assert roamer.path() == ["beta"]
        assert cluster.locate(roamer) == "beta"

    def test_carrier_requires_context(self):
        with pytest.raises(CompletError):
            Carrier.move(Probe_(), "anywhere")
