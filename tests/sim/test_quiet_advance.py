"""Tests for quiet clock advancement (network-charge semantics)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import RealClock, VirtualClock
from repro.sim.scheduler import Scheduler


@pytest.fixture
def sched():
    return Scheduler(VirtualClock())


class TestQuietAdvance:
    def test_moves_clock_without_firing(self, sched):
        fired = []
        sched.call_at(1.0, fired.append, "x")
        sched.advance_quiet(5.0)
        assert sched.clock.now() == 5.0
        assert fired == []  # due, but deferred

    def test_deferred_work_fires_on_next_advance(self, sched):
        fired = []
        sched.call_at(1.0, fired.append, "x")
        sched.advance_quiet(5.0)
        sched.advance(0.0)  # drain
        assert fired == ["x"]

    def test_negative_delta_rejected(self, sched):
        with pytest.raises(ConfigurationError):
            sched.advance_quiet(-0.5)

    def test_real_clock_is_noop(self):
        sched = Scheduler(RealClock())
        sched.advance_quiet(100.0)  # must not raise or jump the clock
        assert sched.clock.now() < 1.0

    def test_quiet_inside_advance_extends_sweep(self, sched):
        """A quiet charge during a timer callback extends the sweep so
        later-due timers still fire in the same advance call."""
        trace = []

        def charging_callback():
            trace.append(("charge", sched.clock.now()))
            sched.advance_quiet(10.0)  # like a network transfer

        sched.call_at(1.0, charging_callback)
        sched.call_at(5.0, lambda: trace.append(("later", sched.clock.now())))
        sched.advance(1.0)
        assert trace[0] == ("charge", 1.0)
        assert ("later", 11.0) in trace
        assert sched.clock.now() == 11.0

    def test_quiet_outside_advance_defers_until_drain(self, sched):
        ticks = []
        sched.call_every(1.0, lambda: ticks.append(sched.clock.now()))
        sched.advance_quiet(3.5)
        assert ticks == []
        sched.advance(0.0)
        # The three missed periods all fire during the drain.  The clock
        # never runs backward, so each deferred firing observes the
        # drain-time instant rather than its original deadline.
        assert ticks == [3.5, 3.5, 3.5]


class TestClusterDrain:
    def test_drain_runs_due_continuations(self, cluster):
        from tests.anchors import Probe
        from repro.core.carrier import Carrier

        probe = Probe(_core=cluster["alpha"])
        Carrier.move(probe, "beta", "note", ("after-drain",))
        # The continuation is scheduled but deferred:
        anchor = cluster["beta"].repository.get(probe._fargo_target_id)
        assert "after-drain" not in anchor.history
        cluster.drain()
        assert anchor.history[-1] == "after-drain"

    def test_drain_is_idempotent(self, cluster):
        cluster.drain()
        cluster.drain()
        assert cluster.now >= 0.0
