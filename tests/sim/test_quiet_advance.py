"""Tests for quiet clock advancement (network-charge semantics)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import RealClock, VirtualClock
from repro.sim.scheduler import Scheduler


@pytest.fixture
def sched():
    return Scheduler(VirtualClock())


class TestQuietAdvance:
    def test_moves_clock_without_firing(self, sched):
        fired = []
        sched.call_at(1.0, fired.append, "x")
        sched.advance_quiet(5.0)
        assert sched.clock.now() == 5.0
        assert fired == []  # due, but deferred

    def test_deferred_work_fires_on_next_advance(self, sched):
        fired = []
        sched.call_at(1.0, fired.append, "x")
        sched.advance_quiet(5.0)
        sched.advance(0.0)  # drain
        assert fired == ["x"]

    def test_negative_delta_rejected(self, sched):
        with pytest.raises(ConfigurationError):
            sched.advance_quiet(-0.5)

    def test_real_clock_is_noop(self):
        sched = Scheduler(RealClock())
        sched.advance_quiet(100.0)  # must not raise or jump the clock
        assert sched.clock.now() < 1.0

    def test_quiet_inside_advance_extends_sweep(self, sched):
        """A quiet charge during a timer callback extends the sweep so
        later-due timers still fire in the same advance call."""
        trace = []

        def charging_callback():
            trace.append(("charge", sched.clock.now()))
            sched.advance_quiet(10.0)  # like a network transfer

        sched.call_at(1.0, charging_callback)
        sched.call_at(5.0, lambda: trace.append(("later", sched.clock.now())))
        sched.advance(1.0)
        assert trace[0] == ("charge", 1.0)
        assert ("later", 11.0) in trace
        assert sched.clock.now() == 11.0

    def test_quiet_outside_advance_defers_until_drain(self, sched):
        ticks = []
        sched.call_every(1.0, lambda: ticks.append(sched.clock.now()))
        sched.advance_quiet(3.5)
        assert ticks == []
        sched.advance(0.0)
        # The three missed periods all fire during the drain.  The clock
        # never runs backward, so each deferred firing observes the
        # drain-time instant rather than its original deadline.
        assert ticks == [3.5, 3.5, 3.5]


class TestChargeSaturation:
    """ROADMAP item 6: periodic work whose quiet charge exceeds its own
    period must not extend the sweep forever."""

    def test_periodic_charging_more_than_period_converges(self, sched):
        ticks = []

        def heartbeat_round():
            ticks.append(sched.clock.now())
            sched.advance_quiet(1.2)  # charges more than the 0.5 period

        sched.call_every(0.5, heartbeat_round)
        sched.advance(10.0)  # would never return before the fix
        # Only firings whose *deadline* fell inside the requested window
        # ran — rounds due purely to quiet extensions were deferred, so
        # the count is bounded by the window, not by the charges.
        assert 0 < len(ticks) <= 20
        # Deferred rounds catch up on the next explicit advance.
        before = len(ticks)
        sched.advance(1.0)
        assert len(ticks) > before

    def test_one_shot_cascade_still_crosses_extension(self, sched):
        """The fix must not break drain cascades: one-shot continuations
        scheduled past the caller target still fire when quiet charges
        extend the sweep (movement continuations depend on this)."""
        trace = []

        def first():
            sched.advance_quiet(4.0)
            sched.call_after(0.0, lambda: trace.append(sched.clock.now()))

        sched.call_at(1.0, first)
        sched.advance(1.0)
        assert trace == [5.0]

    def test_eight_core_recovery_cluster_converges(self):
        """8 Cores under enable_recovery() at the default DetectorConfig:
        one heartbeat round charges ~1.1s of transfer time against the
        0.5s ping interval.  advance() must converge and the detector
        must still reach a verdict on a crashed Core."""
        from repro.cluster.cluster import Cluster
        from repro.cluster.failures import FailureInjector

        cluster = Cluster(["a", "b", "c", "d", "e", "f", "g", "h"])
        try:
            cluster.enable_recovery()
            cluster.advance(5.0)  # hung forever before the fix
            detector = cluster["a"].detector
            assert all(
                entry["status"] == "alive" for entry in detector.state().values()
            )
            inject = FailureInjector(cluster)
            inject.crash_core_at(cluster.scheduler.clock.now() + 0.1, "h")
            cluster.advance(10.0)
            assert detector.verdict("h") == "failed"
        finally:
            cluster.close()


class TestClusterDrain:
    def test_drain_runs_due_continuations(self, cluster):
        from tests.anchors import Probe
        from repro.core.carrier import Carrier

        probe = Probe(_core=cluster["alpha"])
        Carrier.move(probe, "beta", "note", ("after-drain",))
        # The continuation is scheduled but deferred:
        anchor = cluster["beta"].repository.get(probe._fargo_target_id)
        assert "after-drain" not in anchor.history
        cluster.drain()
        assert anchor.history[-1] == "after-drain"

    def test_drain_is_idempotent(self, cluster):
        cluster.drain()
        cluster.drain()
        assert cluster.now >= 0.0
