"""Tests for virtual and real clocks."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import RealClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(start=-1.0)

    def test_tick_advances(self):
        clock = VirtualClock()
        clock.tick(2.5)
        clock.tick(0.5)
        assert clock.now() == 3.0

    def test_negative_tick_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualClock().tick(-0.1)

    def test_set_forward(self):
        clock = VirtualClock()
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_set_backward_rejected(self):
        clock = VirtualClock(start=5.0)
        with pytest.raises(ConfigurationError):
            clock.set(4.0)

    def test_is_virtual(self):
        assert VirtualClock().is_virtual


class TestRealClock:
    def test_moves_on_its_own(self):
        clock = RealClock()
        a = clock.now()
        time.sleep(0.01)
        assert clock.now() > a

    def test_not_virtual(self):
        assert not RealClock().is_virtual

    def test_starts_near_zero(self):
        assert RealClock().now() < 0.5
