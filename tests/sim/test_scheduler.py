"""Tests for the virtual-time timer scheduler."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import RealClock, VirtualClock
from repro.sim.scheduler import Scheduler


@pytest.fixture
def sched():
    return Scheduler(VirtualClock())


class TestOneShotTimers:
    def test_fires_at_deadline(self, sched):
        fired = []
        sched.call_at(5.0, fired.append, "x")
        sched.advance(4.9)
        assert fired == []
        sched.advance(0.1)
        assert fired == ["x"]

    def test_call_after(self, sched):
        fired = []
        sched.advance(10.0)
        sched.call_after(2.0, fired.append, "y")
        sched.advance(2.0)
        assert fired == ["y"]

    def test_past_deadline_rejected(self, sched):
        sched.advance(5.0)
        with pytest.raises(ConfigurationError):
            sched.call_at(4.0, lambda: None)

    def test_negative_delay_rejected(self, sched):
        with pytest.raises(ConfigurationError):
            sched.call_after(-1.0, lambda: None)

    def test_callback_observes_its_deadline(self, sched):
        seen = []
        sched.call_at(3.0, lambda: seen.append(sched.clock.now()))
        sched.advance(10.0)
        assert seen == [3.0]

    def test_ordering_by_deadline(self, sched):
        order = []
        sched.call_at(2.0, order.append, "b")
        sched.call_at(1.0, order.append, "a")
        sched.call_at(3.0, order.append, "c")
        sched.advance(5.0)
        assert order == ["a", "b", "c"]

    def test_fifo_for_equal_deadlines(self, sched):
        order = []
        sched.call_at(1.0, order.append, 1)
        sched.call_at(1.0, order.append, 2)
        sched.advance(1.0)
        assert order == [1, 2]

    def test_cancel(self, sched):
        fired = []
        timer = sched.call_at(1.0, fired.append, "never")
        timer.cancel()
        sched.advance(2.0)
        assert fired == []


class TestPeriodicTimers:
    def test_fires_every_period(self, sched):
        fired = []
        sched.call_every(1.0, lambda: fired.append(sched.clock.now()))
        sched.advance(3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_first_delay_override(self, sched):
        fired = []
        sched.call_every(2.0, lambda: fired.append(sched.clock.now()), first_delay=0.5)
        sched.advance(3.0)
        assert fired == [0.5, 2.5]

    def test_cancel_stops_future_firings(self, sched):
        fired = []
        timer = sched.call_every(1.0, fired.append, "t")
        sched.advance(2.0)
        timer.cancel()
        sched.advance(5.0)
        assert fired == ["t", "t"]

    def test_invalid_period_rejected(self, sched):
        with pytest.raises(ConfigurationError):
            sched.call_every(0.0, lambda: None)

    def test_fired_count(self, sched):
        timer = sched.call_every(1.0, lambda: None)
        sched.advance(4.0)
        assert timer.fired_count == 4


class TestReentrantAdvance:
    def test_nested_advance_extends_sweep(self, sched):
        """A callback that advances time (network transfer during a timer)
        extends the sweep rather than recursing."""
        trace = []

        def callback():
            trace.append(("fire", sched.clock.now()))
            if len(trace) == 1:
                sched.advance(5.0)  # nested: clock moves, timers deferred

        sched.call_at(1.0, callback)
        sched.call_at(2.0, lambda: trace.append(("late", sched.clock.now())))
        sched.advance(1.0)
        # The nested advance carried the clock to 6.0 and the 2.0 timer
        # fired during the outer sweep's continuation.
        assert trace[0] == ("fire", 1.0)
        assert ("late", 6.0) in trace or ("late", 2.0) in trace
        assert sched.clock.now() == 6.0

    def test_timer_scheduling_from_callback(self, sched):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sched.call_after(1.0, chain, n + 1)

        sched.call_after(1.0, chain, 1)
        sched.advance(10.0)
        assert fired == [1, 2, 3]


class TestIntrospection:
    def test_pending_counts_live_timers(self, sched):
        t1 = sched.call_at(1.0, lambda: None)
        sched.call_at(2.0, lambda: None)
        assert sched.pending == 2
        t1.cancel()
        assert sched.pending == 1

    def test_next_deadline(self, sched):
        sched.call_at(5.0, lambda: None)
        t = sched.call_at(3.0, lambda: None)
        assert sched.next_deadline() == 3.0
        t.cancel()
        assert sched.next_deadline() == 5.0

    def test_next_deadline_empty(self, sched):
        assert sched.next_deadline() is None


class TestRealClockDriving:
    def test_advance_requires_virtual_clock(self):
        sched = Scheduler(RealClock())
        with pytest.raises(ConfigurationError):
            sched.advance(1.0)

    def test_fire_due_with_real_clock(self):
        sched = Scheduler(RealClock())
        fired = []
        sched.call_after(0.0, fired.append, "now")
        import time

        time.sleep(0.01)
        assert sched.fire_due() == 1
        assert fired == ["now"]
