"""Unit tests for the unified metrics registry."""

import json

import pytest

from repro.metrics.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
    qualified_name,
)


@pytest.fixture
def registry():
    return MetricsRegistry("alpha")


class TestInstruments:
    def test_counter_get_or_create_is_stable(self, registry):
        a = registry.counter("rpc.calls", kind="invoke")
        b = registry.counter("rpc.calls", kind="invoke")
        assert a is b
        a.inc()
        a.inc(2)
        assert registry.counter_value("rpc.calls", kind="invoke") == 3.0

    def test_label_order_does_not_split_instruments(self, registry):
        a = registry.counter("c", x="1", y="2")
        b = registry.counter("c", y="2", x="1")
        assert a is b

    def test_distinct_labels_are_distinct_instruments(self, registry):
        registry.counter("rpc.calls", kind="invoke").inc()
        registry.counter("rpc.calls", kind="move_request").inc(5)
        named = registry.counters_named("rpc.calls")
        assert len(named) == 2
        assert registry.counter_value("rpc.calls", kind="missing") == 0.0

    def test_gauge_set_and_add(self, registry):
        gauge = registry.gauge("queue.depth")
        gauge.set(4)
        gauge.add(-1)
        assert gauge.snapshot() == 3.0

    def test_histogram_stats_and_buckets(self, registry):
        hist = registry.histogram("rpc.duration", kind="invoke")
        for value in (0.02, 0.02, 0.5, 200.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 0.02
        assert hist.max == 200.0
        assert hist.mean == pytest.approx(200.54 / 4)
        snap = hist.snapshot()
        assert snap["buckets"]["le_0.03"] == 2
        assert snap["buckets"]["le_1"] == 1
        assert snap["overflow"] == 1  # 200 s beyond the last bound

    def test_custom_buckets(self, registry):
        hist = registry.histogram("sizes", buckets=(10.0, 100.0))
        hist.observe(5.0)
        hist.observe(50.0)
        hist.observe(5000.0)
        assert hist.bucket_counts == [1, 1, 1]
        assert hist.bounds != DEFAULT_BUCKETS


class TestSnapshot:
    def test_qualified_names(self):
        assert qualified_name("c", {}) == "c"
        assert qualified_name("c", {"b": "2", "a": "1"}) == "c{a=1,b=2}"

    def test_snapshot_and_json_round_trip(self, registry):
        registry.counter("events.published").inc()
        registry.gauge("complets", core="alpha").set(3)
        registry.histogram("lat").observe(0.5)
        decoded = json.loads(registry.to_json(indent=2))
        assert decoded["core"] == "alpha"
        assert decoded["counters"]["events.published"] == 1.0
        assert decoded["gauges"]["complets{core=alpha}"] == 3.0
        assert decoded["histograms"]["lat"]["count"] == 1


class TestMerge:
    def test_counters_sum_and_gauges_stay_per_core(self):
        a = MetricsRegistry("alpha")
        b = MetricsRegistry("beta")
        a.counter("invocation.executed").inc(2)
        b.counter("invocation.executed").inc(3)
        a.gauge("load").set(0.5)
        b.gauge("load").set(0.9)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["invocation.executed"] == 5.0
        assert merged["gauges"]["load@alpha"] == 0.5
        assert merged["gauges"]["load@beta"] == 0.9

    def test_histograms_merge_stats(self):
        a = MetricsRegistry("alpha")
        b = MetricsRegistry("beta")
        a.histogram("lat").observe(0.1)
        a.histogram("lat").observe(0.3)
        b.histogram("lat").observe(0.5)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        hist = merged["histograms"]["lat"]
        assert hist["count"] == 3
        assert hist["min"] == 0.1
        assert hist["max"] == 0.5
        assert hist["mean"] == pytest.approx(0.9 / 3)

    def test_merge_of_empty_list(self):
        assert merge_snapshots([]) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
