"""Shared fixtures: clusters of various sizes over the virtual clock."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster


@pytest.fixture
def cluster() -> Cluster:
    """Two Cores, uniform 1 MB/s / 10 ms links."""
    return Cluster(["alpha", "beta"])


@pytest.fixture
def cluster3() -> Cluster:
    return Cluster(["alpha", "beta", "gamma"])


@pytest.fixture
def cluster4() -> Cluster:
    return Cluster(["alpha", "beta", "gamma", "delta"])


@pytest.fixture
def make_cluster():
    """Factory for custom topologies."""

    def factory(names, **kwargs) -> Cluster:
        return Cluster(names, **kwargs)

    return factory
