"""Tests for the layout monitor (the Figure 4 stand-in)."""

import pytest

from repro.viewer.render import render_events, render_layout, render_references
from repro.viewer.viewer import LayoutMonitor
from repro.cluster.workload import Counter, Echo
from tests.anchors import Holder


@pytest.fixture
def monitor(cluster3):
    mon = LayoutMonitor(cluster3, home="alpha")
    mon.watch_all()
    return mon


class TestSnapshotsAndRendering:
    def test_render_shows_all_cores(self, cluster3, monitor):
        out = monitor.render()
        for name in ("alpha", "beta", "gamma"):
            assert f"core {name}" in out

    def test_render_shows_complets_and_names(self, cluster3, monitor):
        echo = Echo("x", _core=cluster3["alpha"])
        cluster3["alpha"].bind("svc", echo)
        out = monitor.render()
        assert "alpha/c1:Echo" in out
        assert "svc" in out

    def test_render_empty_core(self, cluster3, monitor):
        assert "(empty)" in monitor.render()

    def test_snapshot_excludes_dead_cores(self, cluster3, monitor):
        cluster3.shutdown_core("gamma")
        names = [s["core"] for s in monitor.snapshots()]
        assert names == ["alpha", "beta"]

    def test_render_layout_function(self):
        out = render_layout(
            [
                {
                    "core": "x",
                    "complets": [{"id": "x/c1:T", "type": "T", "short": "T#1@x"}],
                    "names": [],
                    "tracker_count": 1,
                    "active_profiles": 0,
                }
            ]
        )
        assert "core x" in out and "x/c1:T" in out

    def test_render_references_table(self):
        rows = [
            {"target": "a/c1:T", "type": "link", "invocations": 3, "bytes": 2048, "local": False}
        ]
        out = render_references("b/c1:H", rows)
        assert "a/c1:T" in out and "link" in out and "2.0 KB" in out

    def test_render_references_empty(self):
        assert "(none)" in render_references("x", [])

    def test_render_events_limit(self):
        out = render_events([f"e{i}" for i in range(30)], limit=5)
        assert out.splitlines() == ["e25", "e26", "e27", "e28", "e29"]


class TestLiveTracking:
    def test_feed_records_movement(self, cluster3, monitor):
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        feed = monitor.render_feed()
        assert "completArrived" in feed
        assert "completDeparted" in feed

    def test_feed_records_retype(self, cluster3, monitor):
        from repro.complet.relocators import Pull
        from repro.core.core import Core

        echo = Echo("x", _core=cluster3["alpha"])
        Core.get_meta_ref(echo).set_relocator(Pull())
        assert "referenceRetyped" in monitor.render_feed()

    def test_feed_records_shutdown(self, cluster3, monitor):
        cluster3.shutdown_core("gamma")
        assert "coreShutdown" in monitor.render_feed()

    def test_connect_idempotent(self, cluster3, monitor):
        monitor.connect("beta")
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        arrived = [line for line in monitor.feed if "completArrived" in line]
        assert len(arrived) == 1  # not duplicated by the second connect

    def test_disconnect_stops_feed(self, cluster3, monitor):
        monitor.disconnect()
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        assert monitor.feed == []


class TestManipulation:
    def test_move_complet(self, cluster3, monitor):
        counter = Counter(0, _core=cluster3["beta"], _at="beta")
        monitor.move_complet("beta", str(counter._fargo_target_id), "gamma")
        assert cluster3.locate(counter) == "gamma"

    def test_references_panel(self, cluster3, monitor):
        echo = Echo("x", _core=cluster3["alpha"])
        holder = Holder(echo, _core=cluster3["alpha"])
        out = monitor.references("alpha", str(holder._fargo_target_id))
        assert "link" in out

    def test_retype_reference(self, cluster3, monitor):
        echo = Echo("x", _core=cluster3["alpha"])
        holder = Holder(echo, _core=cluster3["alpha"])
        monitor.retype_reference(
            "alpha",
            str(holder._fargo_target_id),
            str(echo._fargo_target_id),
            "duplicate",
        )
        out = monitor.references("alpha", str(holder._fargo_target_id))
        assert "duplicate" in out

    def test_profile_reads_remote(self, cluster3, monitor):
        Echo("x", _core=cluster3["gamma"], _at="gamma")
        assert monitor.profile("gamma", "completLoad") == 1.0


class TestLinksPanel:
    def test_render_links_shows_configuration(self, cluster3, monitor):
        cluster3.set_link("alpha", "beta", bandwidth=250_000.0, latency=0.05)
        out = monitor.render_links()
        assert "alpha" in out and "beta" in out
        assert "250 KB/s" in out
        assert "50.0 ms" in out

    def test_render_links_shows_traffic_and_state(self, cluster3, monitor):
        echo = Echo("x", _core=cluster3["alpha"])
        cluster3.move(echo, "beta")
        cluster3.set_link("alpha", "gamma", up=False)
        out = monitor.render_links()
        assert "DOWN" in out
        assert "B" in out  # some observed bytes rendered

    def test_render_links_skips_dead_cores(self, cluster3, monitor):
        cluster3.shutdown_core("gamma")
        out = monitor.render_links()
        assert "gamma" not in out
