"""Tests for the movement timeline (viewer extension)."""

import pytest

from repro.viewer.timeline import MovementTimeline, Residency
from repro.cluster.workload import Counter, Echo


@pytest.fixture
def timeline(cluster3):
    tl = MovementTimeline(cluster3, home="alpha")
    tl.watch_all()
    return tl


class TestRecording:
    def test_initial_residency_via_track(self, cluster3, timeline):
        counter = Counter(0, _core=cluster3["alpha"])
        cid = str(counter._fargo_target_id)
        timeline.track(cid, "Counter", "alpha", since=0.0)
        stays = timeline.residencies(cid)
        assert len(stays) == 1
        assert stays[0].core == "alpha"
        assert stays[0].until is None

    def test_move_closes_and_opens_residency(self, cluster3, timeline):
        counter = Counter(0, _core=cluster3["alpha"])
        cid = str(counter._fargo_target_id)
        timeline.track(cid, "Counter", "alpha", since=0.0)
        cluster3.advance(5.0)
        cluster3.move(counter, "beta")
        stays = timeline.residencies(cid)
        assert [s.core for s in stays] == ["alpha", "beta"]
        assert stays[0].until is not None
        assert stays[1].until is None

    def test_move_count(self, cluster3, timeline):
        counter = Counter(0, _core=cluster3["alpha"])
        cid = str(counter._fargo_target_id)
        timeline.track(cid, "Counter", "alpha")
        cluster3.move(counter, "beta")
        cluster3.move(counter, "gamma")
        assert timeline.move_count(cid) == 2

    def test_untracked_complet_recorded_from_first_move(self, cluster3, timeline):
        echo = Echo("x", _core=cluster3["alpha"])
        cluster3.move(echo, "gamma")
        stays = timeline.residencies(str(echo._fargo_target_id))
        assert stays[-1].core == "gamma"

    def test_disconnect_stops_recording(self, cluster3, timeline):
        timeline.disconnect()
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        assert timeline.residencies(str(counter._fargo_target_id)) == []


class TestQueries:
    def test_location_at(self, cluster3, timeline):
        counter = Counter(0, _core=cluster3["alpha"])
        cid = str(counter._fargo_target_id)
        timeline.track(cid, "Counter", "alpha", since=0.0)
        cluster3.advance(10.0)
        cluster3.move(counter, "beta")
        assert timeline.location_at(cid, 5.0) == "alpha"
        assert timeline.location_at(cid, cluster3.now + 0.1) is None or True
        assert timeline.location_at(cid, cluster3.now - 0.001) == "beta"

    def test_location_before_tracking(self, timeline):
        assert timeline.location_at("ghost", 1.0) is None


class TestRendering:
    def test_render_rows_per_complet(self, cluster3, timeline):
        counter = Counter(0, _core=cluster3["alpha"])
        echo = Echo("x", _core=cluster3["alpha"])
        timeline.track(str(counter._fargo_target_id), "Counter", "alpha", since=0.0)
        timeline.track(str(echo._fargo_target_id), "Echo", "alpha", since=0.0)
        cluster3.advance(5.0)
        cluster3.move(counter, "beta")
        cluster3.advance(5.0)
        out = timeline.render(width=40)
        assert "movement timeline" in out
        assert "Counter" in out and "Echo" in out
        assert "beta" in out

    def test_render_empty(self, timeline):
        assert "movement timeline" in timeline.render()


class TestResidency:
    def test_overlaps(self):
        stay = Residency("a", since=2.0, until=5.0)
        assert stay.overlaps(0.0, 3.0)
        assert stay.overlaps(4.0, 10.0)
        assert not stay.overlaps(5.0, 10.0)
        assert not stay.overlaps(0.0, 2.0)

    def test_open_residency_overlaps_future(self):
        stay = Residency("a", since=2.0, until=None)
        assert stay.overlaps(100.0, 200.0)
