"""Tests for ``on timer(...)`` rules (periodic administration extension)."""

import pytest

from repro.errors import ScriptRuntimeError
from repro.script.interpreter import ScriptEngine
from repro.cluster.workload import Counter


@pytest.fixture
def engine(cluster3):
    return ScriptEngine(cluster3, home="alpha")


class TestTimerRules:
    def test_fires_on_interval(self, cluster3, engine):
        engine.run('on timer(5) do log "tick" end')
        cluster3.advance(14.0)
        assert engine.log == ["tick", "tick"]

    def test_interval_expression(self, cluster3, engine):
        engine.run("$period = 2\non timer($period) do log t end")
        cluster3.advance(6.5)
        assert engine.log == ["t", "t", "t"]

    def test_event_bound_in_actions(self, cluster3, engine):
        engine.run("on timer(1) do $e = $event log $e end")
        cluster3.advance(1.0)
        assert "timer@alpha" in engine.log[0]

    def test_requires_interval(self, engine):
        with pytest.raises(ScriptRuntimeError, match="interval"):
            engine.run("on timer do log x end")

    def test_rejects_nonpositive_interval(self, engine):
        with pytest.raises(ScriptRuntimeError, match="positive"):
            engine.run("on timer(0) do log x end")

    def test_stop_cancels_timer(self, cluster3, engine):
        engine.run('on timer(1) do log "tick" end')
        cluster3.advance(2.0)
        engine.stop()
        cluster3.advance(10.0)
        assert engine.log == ["tick", "tick"]

    def test_periodic_rebalancing_policy(self, cluster3, engine):
        """A realistic timer rule: periodically drain a hot Core."""
        stubs = [Counter(i, _core=cluster3["alpha"]) for i in range(4)]
        engine.run(
            "on timer(10) do move completsIn alpha to beta end"
        )
        cluster3.advance(10.5)
        assert cluster3.complets_at("alpha") == []
        assert len(cluster3.complets_at("beta")) == 4
        for index, stub in enumerate(stubs):
            assert stub.read() == index

    def test_timer_with_checkpoint_action(self, cluster3, engine):
        """Timer + user action: scripted periodic checkpoints."""
        from repro.core.persistence import snapshot

        counter = Counter(0, _core=cluster3["alpha"])
        vault = []

        def checkpoint(ctx, stub):
            host = ctx.engine.cluster.core(ctx.engine.cluster.locate(stub))
            vault.append(snapshot(host, stub))

        engine.register_action("checkpoint", checkpoint)
        engine._globals["c"] = counter
        engine.run("on timer(5) do call checkpoint($c) end")
        cluster3.advance(16.0)
        assert len(vault) == 3
