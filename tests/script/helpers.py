"""Helper actions auto-loaded by interpreter tests (module:function form)."""

from __future__ import annotations

RECORDED: list = []


def record_event(ctx, event) -> None:
    """A user-defined script action loaded on first ``call``."""
    RECORDED.append(event)
