"""Tests for the script tokenizer."""

import pytest

from repro.errors import ScriptSyntaxError
from repro.script.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def values(source):
    return [t.value for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestTokens:
    def test_idents(self):
        assert kinds("on shutdown do end") == [TokenKind.IDENT] * 4

    def test_variables(self):
        tokens = tokenize("$core $targetCore")
        assert tokens[0].kind is TokenKind.VARIABLE
        assert tokens[0].value == "core"
        assert tokens[1].value == "targetCore"

    def test_args(self):
        tokens = tokenize("%1 %23")
        assert tokens[0].kind is TokenKind.ARG
        assert tokens[0].value == "1"
        assert tokens[1].value == "23"

    def test_numbers(self):
        assert values("3 3.5 -2") == ["3", "3.5", "-2"]
        assert kinds("3 3.5 -2") == [TokenKind.NUMBER] * 3

    def test_strings_double_and_single(self):
        tokens = tokenize('"hello world" \'single\'')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == "hello world"
        assert tokens[1].value == "single"

    def test_string_escape(self):
        assert tokenize(r'"say \"hi\""')[0].value == 'say "hi"'

    def test_symbols(self):
        assert values("= ( ) [ ] ,") == ["=", "(", ")", "[", "]", ","]
        assert kinds("= ( ) [ ] ,") == [TokenKind.SYMBOL] * 6

    def test_dotted_idents(self):
        assert values("mypkg.actions:helper"[:13]) == ["mypkg.actions"]

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind is TokenKind.EOF


class TestStructure:
    def test_comments_skipped(self):
        source = "on shutdown # a comment\ndo end"
        assert values(source) == ["on", "shutdown", "do", "end"]

    def test_newlines_are_whitespace(self):
        assert values("a\nb\n\nc") == ["a", "b", "c"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_paper_script_tokenizes(self):
        source = """
        $coreList = %1
        on shutdown firedby $core listenAt $coreList do
            move completsIn $core to $targetCore
        end
        on methodInvokeRate(3) from $comps[0] to $comps[1] do
            move $comps[0] to coreOf $comps[1]
        end
        """
        tokens = tokenize(source)
        assert tokens[-1].kind is TokenKind.EOF
        assert "methodInvokeRate" in [t.value for t in tokens]


class TestErrors:
    def test_bare_dollar(self):
        with pytest.raises(ScriptSyntaxError, match="variable name"):
            tokenize("$ = 1")

    def test_bare_percent(self):
        with pytest.raises(ScriptSyntaxError, match="argument number"):
            tokenize("% x")

    def test_unterminated_string(self):
        with pytest.raises(ScriptSyntaxError, match="unterminated"):
            tokenize('"never ends')

    def test_string_across_newline(self):
        with pytest.raises(ScriptSyntaxError):
            tokenize('"broken\nstring"')

    def test_unexpected_character(self):
        with pytest.raises(ScriptSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_error_carries_location(self):
        try:
            tokenize("ok\n   @")
        except ScriptSyntaxError as exc:
            assert exc.line == 2
            assert exc.column == 4
        else:  # pragma: no cover
            raise AssertionError("expected ScriptSyntaxError")
