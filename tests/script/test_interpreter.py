"""Tests for the script interpreter: rule activation and actions."""

import pytest

from repro.errors import ScriptRuntimeError, UnknownActionError
from repro.script.interpreter import ScriptEngine
from repro.cluster.workload import Client, Counter, Echo, Server


@pytest.fixture
def engine3(cluster3):
    return ScriptEngine(cluster3, home="alpha")


class TestBindings:
    def test_top_level_assignments(self, engine3):
        engine3.run('$a = "x"\n$b = 3\n$l = [p, q]')
        assert engine3._globals == {"a": "x", "b": 3, "l": ["p", "q"]}

    def test_positional_args(self, engine3):
        engine3.run("$first = %1\n$second = %2", args=("one", ["two", 2]))
        assert engine3._globals["first"] == "one"
        assert engine3._globals["second"] == ["two", 2]

    def test_missing_arg_rejected(self, engine3):
        with pytest.raises(ScriptRuntimeError, match="%2"):
            engine3.run("$x = %2", args=("only-one",))

    def test_undefined_variable_rejected(self, engine3):
        with pytest.raises(ScriptRuntimeError, match="undefined"):
            engine3.run("$x = $ghost")

    def test_index_out_of_range(self, engine3):
        with pytest.raises(ScriptRuntimeError, match="index"):
            engine3.run("$l = [a]\n$x = $l[5]")


class TestCoreEventRules:
    def test_shutdown_rule_moves_complets(self, cluster3, engine3):
        echo = Echo("x", _core=cluster3["beta"], _at="beta")
        engine3.run(
            "on shutdown firedby $core listenAt [beta] do"
            " move completsIn $core to gamma end"
        )
        cluster3.shutdown_core("beta")
        assert cluster3.complets_at("gamma")

    def test_fired_by_binding(self, cluster3, engine3):
        engine3.run('on shutdown firedby $core do log $core end')
        cluster3.shutdown_core("beta")
        assert engine3.log == ["beta"]

    def test_listen_at_filters(self, cluster3, engine3):
        engine3.run('on shutdown listenAt [beta] do log "saw-it" end')
        cluster3.shutdown_core("gamma")
        assert engine3.log == []
        cluster3.shutdown_core("beta")
        assert engine3.log == ["saw-it"]

    def test_default_listens_everywhere(self, cluster3, engine3):
        engine3.run('on completArrived do log "arrived" end')
        counter = Counter(0, _core=cluster3["beta"], _at="beta")
        cluster3.move(counter, "gamma")
        assert engine3.log == ["arrived"]

    def test_rule_counts_firings(self, cluster3, engine3):
        engine3.run('on completDeparted do log "gone" end')
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        cluster3.move(counter, "gamma")
        assert engine3.active_rules[0].fired_count == 2


class TestProfileRules:
    def test_method_invoke_rate_rule(self, cluster3, engine3):
        server = Server(_core=cluster3["beta"], _at="beta")
        client = Client(server, _core=cluster3["alpha"])
        engine3._globals.update({"c": client, "s": server})
        engine3.run(
            "on methodInvokeRate(3) from $c to $s do move $c to coreOf $s end"
        )
        for _ in range(4):
            client.run(15)
            cluster3.advance(1.0)
        assert cluster3.locate(client) == "beta"

    def test_threshold_not_reached_no_move(self, cluster3, engine3):
        server = Server(_core=cluster3["beta"], _at="beta")
        client = Client(server, _core=cluster3["alpha"])
        engine3._globals.update({"c": client, "s": server})
        engine3.run(
            "on methodInvokeRate(50) from $c to $s do move $c to coreOf $s end"
        )
        for _ in range(4):
            client.run(5)
            cluster3.advance(1.0)
        assert cluster3.locate(client) == "alpha"

    def test_custom_operator(self, cluster3, engine3):
        engine3.run(
            'on completLoad(1, "<") listenAt [beta] do log "idle" end'
        )
        cluster3.advance(1.5)
        assert engine3.log == ["idle"]

    def test_profile_rule_needs_threshold(self, cluster3, engine3):
        with pytest.raises(ScriptRuntimeError, match="threshold"):
            engine3.run("on methodInvokeRate from $a to $b do end")

    def test_unknown_event_rejected(self, cluster3, engine3):
        with pytest.raises(ScriptRuntimeError, match="unknown event"):
            engine3.run("on quantumFlux(3) do end")

    def test_rate_rule_requires_from_to(self, cluster3, engine3):
        with pytest.raises(ScriptRuntimeError, match="from"):
            engine3.run("on methodInvokeRate(3) do end")

    def test_every_clause_sets_interval(self, cluster3, engine3):
        engine3.run(
            'on completLoad(0, ">=") listenAt [beta] every 5 do log t end'
        )
        cluster3.advance(4.0)
        assert engine3.log == []
        cluster3.advance(1.5)
        assert engine3.log == ["t"]

    def test_watch_follows_migrating_source(self, cluster3, engine3):
        """§4.2: the rule keeps working after the watched complet moves."""
        server = Server(_core=cluster3["gamma"], _at="gamma")
        client = Client(server, _core=cluster3["alpha"])
        engine3._globals.update({"c": client, "s": server})
        engine3.run(
            "on methodInvokeRate(3) from $c to $s do log moved end"
        )
        # Move the client before any threshold crossing.
        cluster3.move(client, "beta")
        for _ in range(4):
            client.run(15)
            cluster3.advance(1.0)
        assert "moved" in engine3.log


class TestActions:
    def test_retype_action(self, cluster3, engine3):
        from repro.core.core import Core

        echo = Echo("x", _core=cluster3["alpha"])
        engine3._globals["r"] = echo
        engine3.run('on completDeparted listenAt [beta] do retype $r to pull end')
        probe = Counter(0, _core=cluster3["beta"], _at="beta")
        cluster3.move(probe, "gamma")
        assert Core.get_meta_ref(echo).type_name == "pull"

    def test_call_registered_action(self, cluster3, engine3):
        calls = []
        engine3.register_action("record", lambda ctx, *args: calls.append(args))
        engine3.run('on completArrived do call record("a", 3) end')
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        assert calls == [("a", 3)]

    def test_call_autoloaded_action(self, cluster3, engine3):
        engine3.run(
            'on completArrived do call tests.script.helpers:record_event($event) end'
        )
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        from tests.script.helpers import RECORDED

        assert RECORDED and RECORDED[-1].name == "completArrived"

    def test_unknown_action_rejected(self, engine3):
        with pytest.raises(UnknownActionError):
            engine3._resolve_action("vanish")

    def test_unloadable_action_rejected(self, engine3):
        with pytest.raises(UnknownActionError):
            engine3._resolve_action("no.such.module:fn")

    def test_assignment_action_scoped_to_firing(self, cluster3, engine3):
        engine3.run('on completArrived do $tmp = x log $tmp end')
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        assert engine3.log == ["x"]
        assert "tmp" not in engine3._globals

    def test_failing_action_isolated(self, cluster3, engine3):
        engine3.run(
            "on completArrived do move $ghost to beta end"
        )
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")  # rule fails internally, move succeeds
        assert cluster3.locate(counter) == "beta"


class TestLifecycle:
    def test_stop_deactivates_rules(self, cluster3, engine3):
        engine3.run('on completArrived do log "seen" end')
        engine3.stop()
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move(counter, "beta")
        assert engine3.log == []

    def test_stop_removes_watches(self, cluster3, engine3):
        engine3.run('on completLoad(5) listenAt [beta] do log x end')
        assert cluster3["beta"].monitor.active_watches() == 1
        engine3.stop()
        assert cluster3["beta"].monitor.active_watches() == 0
