"""Source spans on AST nodes and the parser's improved error messages."""

import pytest

from repro.errors import ScriptSyntaxError
from repro.script.ast import ArgRef, Assignment, Literal, Span
from repro.script.parser import parse

SOURCE = (
    "$a = %1\n"
    "on shutdown firedby $c do\n"
    " move completsIn $c to $a\n"
    "end\n"
)


class TestSpans:
    def test_every_statement_carries_its_start(self):
        assignment, rule = parse(SOURCE).statements
        assert assignment.span == Span(1, 1)
        assert rule.span == Span(2, 1)

    def test_expression_and_action_spans(self):
        _, rule = parse(SOURCE).statements
        (move,) = rule.actions
        assert move.span == Span(3, 2)
        assert move.target.span == Span(3, 7)
        assert move.destination.span == Span(3, 24)

    def test_assignment_value_span(self):
        (assignment, _) = parse(SOURCE).statements
        assert assignment.value.span == Span(1, 6)

    def test_spans_do_not_affect_equality(self):
        # Existing tests (and the duplicate-rule checker) compare nodes
        # structurally; position must not participate.
        assert parse("$a = %1").statements == (Assignment("a", ArgRef(1)),)
        assert Literal(3, span=Span(1, 1)) == Literal(3, span=Span(9, 9))

    def test_span_renders_line_colon_column(self):
        assert str(Span(12, 3)) == "12:3"


class TestErrorMessages:
    def err(self, source):
        with pytest.raises(ScriptSyntaxError) as info:
            parse(source)
        return info.value

    def test_missing_end_names_the_rule_and_its_line(self):
        e = self.err('on shutdown do\n log "x"')
        assert "rule 'on shutdown' (line 1) is missing its 'end'" in str(e)

    def test_expected_token_is_named(self):
        e = self.err("on do\n log 1\nend")
        assert "expected 'do', got 'log'" in str(e)

    def test_eof_is_described_as_end_of_script(self):
        e = self.err("$x = ")
        assert "end of script" in str(e)
        assert e.line == 1 and e.column == 6

    def test_firedby_requires_a_variable(self):
        e = self.err("on shutdown firedby 5 do log 1 end")
        assert "'firedby' binds a $variable, got '5'" in str(e)

    def test_action_errors_mention_end(self):
        e = self.err("on timer(1) do\n junk\nend")
        assert "expected an action (move/retype/log/call) or 'end'" in str(e)
        assert "'junk'" in str(e)

    def test_top_level_errors_name_both_forms(self):
        e = self.err("move $a to b")
        assert "rule ('on ...')" in str(e)
        assert "assignment ('$var = ...')" in str(e)
