"""Tests for the script standard-library actions."""

import pytest

from repro.script.interpreter import ScriptEngine
from repro.cluster.workload import Counter, Echo


@pytest.fixture
def engine(cluster3):
    return ScriptEngine(cluster3, home="alpha")


class TestCollectTrackers:
    def test_collects_after_chain_shortening(self, cluster3, engine):
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move_via_host(counter, "beta")
        cluster3.move_via_host(counter, "gamma")
        counter.increment()
        engine.run('on completLoad(0, ">=") listenAt [alpha] do call collectTrackers() end')
        cluster3.advance(1.0)
        assert any("collected" in line for line in engine.log)


class TestShutdownCore:
    def test_cascading_shutdown(self, cluster3, engine):
        """A rule can shut down another Core (cascade drill)."""
        engine.run(
            "on shutdown listenAt [beta] do call shutdownCore(gamma) end"
        )
        cluster3.shutdown_core("beta")
        assert not cluster3["gamma"].is_running


class TestColocate:
    def test_colocate_moves_to_anchor_core(self, cluster3, engine):
        mover = Counter(0, _core=cluster3["alpha"])
        anchor_point = Echo("x", _core=cluster3["gamma"], _at="gamma")
        engine._globals.update({"m": mover, "a": anchor_point})
        engine.run("on completArrived listenAt [beta] do call colocate($m, $a) end")
        trigger = Counter(0, _core=cluster3["alpha"])
        cluster3.move(trigger, "beta")
        assert cluster3.locate(mover) == "gamma"

    def test_colocate_type_checked(self, cluster3, engine):
        from repro.errors import ScriptRuntimeError
        from repro.script.interpreter import ScriptContext
        from repro.script.stdlib import _colocate

        with pytest.raises(ScriptRuntimeError):
            _colocate(ScriptContext(engine, {}, None), "a", "not-a-stub")


class TestBindName:
    def test_binds_at_home_core(self, cluster3, engine):
        echo = Echo("svc", _core=cluster3["beta"], _at="beta")
        engine._globals["e"] = echo
        engine.run('on completArrived do call bindName("service", $e) end')
        trigger = Counter(0, _core=cluster3["alpha"])
        cluster3.move(trigger, "beta")
        assert cluster3["alpha"].lookup("service").ping() == "svc"


class TestFailoverAction:
    @pytest.fixture
    def recovering(self, cluster3):
        from repro.cluster.failures import FailureInjector
        from repro.recovery import CheckpointPolicy

        cluster3.enable_recovery(auto_recover=False)
        counter = Counter(40, _core=cluster3["alpha"], _at="gamma")
        cluster3.checkpoints.protect(
            counter, CheckpointPolicy(interval=1.0, on_arrival=True)
        )
        counter.increment(by=2)
        return counter, FailureInjector(cluster3)

    def test_failover_rule_drives_recovery(self, cluster3, engine, recovering):
        counter, inject = recovering
        engine.run("on coreFailed firedby $c do call failover() end")
        inject.crash_core_at(2.0, "gamma")
        cluster3.advance(8.0)
        assert any("failover of gamma" in line for line in engine.log)
        assert cluster3.recovery.reports[0].failed == "gamma"
        assert cluster3.stub_at("beta", counter).read() == 42

    def test_failover_with_explicit_core(self, cluster3, engine, recovering):
        counter, _ = recovering
        cluster3.advance(1.5)  # interval checkpoint captures 42
        cluster3.network.set_node_down("gamma")
        engine.run('on timer(1) do call failover("gamma") end')
        cluster3.advance(1.0)
        assert cluster3.recovery.reports
        assert cluster3.stub_at("alpha", counter).read() == 42

    def test_repeated_failover_is_idempotent(self, cluster3, engine, recovering):
        _, inject = recovering
        engine.run("on coreFailed firedby $c do call failover() end")
        inject.crash_core_at(2.0, "gamma")
        cluster3.advance(12.0)  # several detectors keep declaring gamma
        assert len(cluster3.recovery.reports) == 1
        assert any("already handled" in line for line in engine.log)

    def test_restore_action(self, cluster3, engine, recovering):
        counter, _ = recovering
        cluster3.advance(1.5)
        cluster3.network.set_node_down("gamma")
        short = counter._fargo_target_id.short()
        engine.run(f'on timer(1) do call restore("{short}", "beta") end')
        cluster3.advance(1.0)
        assert any("restored" in line for line in engine.log)
        copies = [c for c in cluster3.complets_at("beta") if "Counter" in c]
        assert len(copies) == 1

    def test_failover_without_recovery_enabled(self, cluster3, engine, caplog):
        """The action fails typed; the engine logs and survives the rule."""
        import logging

        engine.run('on timer(1) do call failover("gamma") end')
        with caplog.at_level(logging.WARNING, logger="repro.script.interpreter"):
            cluster3.advance(1.0)  # must not blow up the clock sweep
        assert "recovery is not enabled" in caplog.text
