"""Tests for the script standard-library actions."""

import pytest

from repro.script.interpreter import ScriptEngine
from repro.cluster.workload import Counter, Echo


@pytest.fixture
def engine(cluster3):
    return ScriptEngine(cluster3, home="alpha")


class TestCollectTrackers:
    def test_collects_after_chain_shortening(self, cluster3, engine):
        counter = Counter(0, _core=cluster3["alpha"])
        cluster3.move_via_host(counter, "beta")
        cluster3.move_via_host(counter, "gamma")
        counter.increment()
        engine.run('on completLoad(0, ">=") listenAt [alpha] do call collectTrackers() end')
        cluster3.advance(1.0)
        assert any("collected" in line for line in engine.log)


class TestShutdownCore:
    def test_cascading_shutdown(self, cluster3, engine):
        """A rule can shut down another Core (cascade drill)."""
        engine.run(
            "on shutdown listenAt [beta] do call shutdownCore(gamma) end"
        )
        cluster3.shutdown_core("beta")
        assert not cluster3["gamma"].is_running


class TestColocate:
    def test_colocate_moves_to_anchor_core(self, cluster3, engine):
        mover = Counter(0, _core=cluster3["alpha"])
        anchor_point = Echo("x", _core=cluster3["gamma"], _at="gamma")
        engine._globals.update({"m": mover, "a": anchor_point})
        engine.run("on completArrived listenAt [beta] do call colocate($m, $a) end")
        trigger = Counter(0, _core=cluster3["alpha"])
        cluster3.move(trigger, "beta")
        assert cluster3.locate(mover) == "gamma"

    def test_colocate_type_checked(self, cluster3, engine):
        from repro.errors import ScriptRuntimeError
        from repro.script.interpreter import ScriptContext
        from repro.script.stdlib import _colocate

        with pytest.raises(ScriptRuntimeError):
            _colocate(ScriptContext(engine, {}, None), "a", "not-a-stub")


class TestBindName:
    def test_binds_at_home_core(self, cluster3, engine):
        echo = Echo("svc", _core=cluster3["beta"], _at="beta")
        engine._globals["e"] = echo
        engine.run('on completArrived do call bindName("service", $e) end')
        trigger = Counter(0, _core=cluster3["alpha"])
        cluster3.move(trigger, "beta")
        assert cluster3["alpha"].lookup("service").ping() == "svc"
