"""Experiment C8: the §4.3 example script runs verbatim.

The paper gives one complete script: a "reliability" rule that evacuates
every complet from a Core that announces shutdown, and a "performance"
rule that colocates two complets once the invocation rate between them
exceeds 3 calls/second.  This module runs that script, character for
character as printed (modulo the paper's line numbers), against a live
cluster and asserts both rules do what §4.3 says they do.
"""

import pytest

from repro.script.interpreter import ScriptEngine
from repro.script.parser import parse
from repro.cluster.workload import Client, Echo, Server

#: The §4.3 script, verbatim.
PAPER_SCRIPT = """\
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
"""


@pytest.fixture
def deployment():
    """Three worker Cores plus a safe Core, with the script active."""
    from repro.cluster.cluster import Cluster

    cluster = Cluster(["c1", "c2", "safe"])
    server = Server(_core=cluster["c2"], _at="c2")
    client = Client(server, _core=cluster["c1"])
    engine = ScriptEngine(cluster, home="safe")
    engine.run(PAPER_SCRIPT, args=(["c1", "c2"], "safe", [client, server]))
    return cluster, engine, client, server


class TestVerbatimText:
    def test_parses(self):
        script = parse(PAPER_SCRIPT)
        assert len(script.rules) == 2
        assert len(script.assignments) == 3

    def test_rule_events(self):
        script = parse(PAPER_SCRIPT)
        assert script.rules[0].event == "shutdown"
        assert script.rules[1].event == "methodInvokeRate"


class TestReliabilityRule:
    def test_shutdown_evacuates_all_complets(self, deployment):
        cluster, engine, client, server = deployment
        extra = Echo("bystander", _core=cluster["c1"], _at="c1")
        assert len(cluster.complets_at("c1")) == 2
        cluster.shutdown_core("c1")
        assert cluster.complets_at("c1") == []
        assert len(cluster.complets_at("safe")) == 2

    def test_evacuated_complets_still_work(self, deployment):
        cluster, engine, client, server = deployment
        cluster.shutdown_core("c1")
        rescued = cluster.stub_at("safe", client)
        assert rescued.run(1) == 1  # client still reaches the server

    def test_rule_only_listens_at_listed_cores(self, deployment):
        cluster, engine, client, server = deployment
        cluster.shutdown_core("safe")  # not in $coreList
        assert engine.active_rules[0].fired_count == 0


class TestPerformanceRule:
    def test_high_rate_colocates(self, deployment):
        """invocationRate > 3/s → the client moves to the server's Core."""
        cluster, engine, client, server = deployment
        assert cluster.locate(client) == "c1"
        for _ in range(4):
            client.run(15)
            cluster.advance(1.0)
        assert cluster.locate(client) == "c2"
        assert cluster.locate(server) == "c2"

    def test_low_rate_stays_apart(self, deployment):
        cluster, engine, client, server = deployment
        for _ in range(5):
            client.run(1)
            cluster.advance(1.0)
        assert cluster.locate(client) == "c1"

    def test_colocated_pair_traffic_becomes_local(self, deployment):
        cluster, engine, client, server = deployment
        for _ in range(4):
            client.run(15)
            cluster.advance(1.0)
        assert cluster.locate(client) == "c2"
        from repro.net.messages import MessageKind

        invokes = cluster.stats.by_kind[MessageKind.INVOKE]
        client_at_c2 = cluster.stub_at("c2", client)
        client_at_c2.run(10)
        # The ten server calls happened inside c2: no INVOKE traffic.
        assert cluster.stats.by_kind[MessageKind.INVOKE] == invokes


class TestBothRulesTogether:
    def test_colocate_then_evacuate(self, deployment):
        cluster, engine, client, server = deployment
        for _ in range(4):
            client.run(15)
            cluster.advance(1.0)
        assert cluster.locate(client) == "c2"
        cluster.shutdown_core("c2")
        assert sorted(
            cid.split(":")[-1] for cid in cluster.complets_at("safe")
        ) == ["Client", "Server"]
        rescued = cluster.stub_at("safe", client)
        assert rescued.run(1) == 61  # 4*15 earlier + this one
