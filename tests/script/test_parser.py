"""Tests for the script parser."""

import pytest

from repro.errors import ScriptSyntaxError
from repro.script.ast import (
    ArgRef,
    Assignment,
    CallAction,
    CompletsIn,
    CoreOf,
    Index,
    ListExpr,
    Literal,
    LogAction,
    MoveAction,
    RetypeAction,
    Rule,
    VarRef,
)
from repro.script.parser import parse


class TestAssignments:
    def test_arg_assignment(self):
        script = parse("$coreList = %1")
        assert script.statements == (Assignment("coreList", ArgRef(1)),)

    def test_literal_assignments(self):
        script = parse('$a = "text"\n$b = 3\n$c = 2.5\n$d = bareword')
        values = [s.value for s in script.assignments]
        assert values == [Literal("text"), Literal(3), Literal(2.5), Literal("bareword")]

    def test_list_literal(self):
        script = parse("$l = [a, b, 3]")
        assert script.statements[0].value == ListExpr(
            (Literal("a"), Literal("b"), Literal(3))
        )

    def test_indexing(self):
        script = parse("$x = $comps[1]")
        assert script.statements[0].value == Index(VarRef("comps"), 1)


class TestRules:
    def test_minimal_rule(self):
        rule = parse("on shutdown do end").rules[0]
        assert rule.event == "shutdown"
        assert rule.actions == ()

    def test_event_args(self):
        rule = parse("on methodInvokeRate(3) do end").rules[0]
        assert rule.event_args == (Literal(3),)

    def test_clauses(self):
        rule = parse(
            "on methodInvokeRate(3, '>=') from $a to $b listenAt $c every 2 do end"
        ).rules[0]
        assert rule.source == VarRef("a")
        assert rule.target == VarRef("b")
        assert rule.listen_at == VarRef("c")
        assert rule.every == Literal(2)
        assert rule.event_args == (Literal(3), Literal(">="))

    def test_firedby_binds_variable(self):
        rule = parse("on shutdown firedby $core do end").rules[0]
        assert rule.fired_by == "core"

    def test_move_action(self):
        rule = parse("on shutdown do move $c to safe end").rules[0]
        assert rule.actions == (MoveAction(VarRef("c"), Literal("safe")),)

    def test_move_completsin_coreof(self):
        rule = parse(
            "on shutdown firedby $core do move completsIn $core to coreOf $anchor end"
        ).rules[0]
        action = rule.actions[0]
        assert action == MoveAction(
            CompletsIn(VarRef("core")), CoreOf(VarRef("anchor"))
        )

    def test_retype_action(self):
        rule = parse("on shutdown do retype $r to pull end").rules[0]
        assert rule.actions == (RetypeAction(VarRef("r"), "pull"),)

    def test_log_action(self):
        rule = parse('on shutdown do log "fired" end').rules[0]
        assert rule.actions == (LogAction(Literal("fired")),)

    def test_call_action(self):
        rule = parse("on shutdown do call collectTrackers() end").rules[0]
        assert rule.actions == (CallAction("collectTrackers", ()),)

    def test_call_with_args(self):
        rule = parse('on shutdown do call helper($a, "x", 3) end').rules[0]
        assert rule.actions[0].args == (VarRef("a"), Literal("x"), Literal(3))

    def test_assignment_inside_rule(self):
        rule = parse("on shutdown do $t = safe move $c to $t end").rules[0]
        assert len(rule.actions) == 2

    def test_multiple_actions(self):
        rule = parse(
            'on shutdown do log "a" move $c to safe log "b" end'
        ).rules[0]
        assert len(rule.actions) == 3


class TestPaperScript:
    PAPER = """
    $coreList = %1
    $targetCore = %2
    $comps = %3
    on shutdown firedby $core
      listenAt $coreList do
        move completsIn $core to $targetCore
    end
    on methodInvokeRate(3)
      from $comps[0] to $comps[1] do
        move $comps[0] to coreOf $comps[1]
    end
    """

    def test_parses_verbatim(self):
        script = parse(self.PAPER)
        assert len(script.assignments) == 3
        assert len(script.rules) == 2

    def test_reliability_rule_shape(self):
        rule = parse(self.PAPER).rules[0]
        assert rule.event == "shutdown"
        assert rule.fired_by == "core"
        assert rule.listen_at == VarRef("coreList")
        assert rule.actions == (
            MoveAction(CompletsIn(VarRef("core")), VarRef("targetCore")),
        )

    def test_performance_rule_shape(self):
        rule = parse(self.PAPER).rules[1]
        assert rule.event == "methodInvokeRate"
        assert rule.event_args == (Literal(3),)
        assert rule.source == Index(VarRef("comps"), 0)
        assert rule.target == Index(VarRef("comps"), 1)
        assert rule.actions == (
            MoveAction(Index(VarRef("comps"), 0), CoreOf(Index(VarRef("comps"), 1))),
        )


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "on shutdown do",                 # missing end
            "on do end",                      # missing event name
            "move $a to b",                   # action outside a rule
            "on shutdown do move $a end",     # move without destination
            "$x 5",                           # missing '='
            "on shutdown firedby core do end",  # firedby needs a variable
            "on shutdown do call foo end",    # call needs parentheses
            "$x = $l[a]",                     # non-numeric index
            "on e(1 do end",                  # unclosed parenthesis
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(ScriptSyntaxError):
            parse(source)

    def test_error_location_reported(self):
        try:
            parse("on shutdown do\nbogus $x end")
        except ScriptSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected ScriptSyntaxError")
